#include "arcade/measures.hpp"

#include "arcade/fault_tree.hpp"
#include "ctmc/bounded_until.hpp"
#include "ctmc/steady_state.hpp"
#include "linalg/vector_ops.hpp"
#include "rewards/rewards.hpp"
#include "support/errors.hpp"

namespace arcade::core {

namespace {

/// The quotient to analyse instead of the full chain, or nullptr when the
/// model was compiled with ReductionPolicy::Off.  Computed lazily once per
/// model and shared (see CompiledModel::quotient).
std::shared_ptr<const ctmc::QuotientCtmc> auto_quotient(const CompiledModel& model) {
    if (model.reduction() != ReductionPolicy::Auto) return nullptr;
    return model.quotient().first;
}

}  // namespace

double availability(const CompiledModel& model) {
    if (const auto q = auto_quotient(model)) {
        return ctmc::steady_state_probability(q->chain(), q->chain().label("operational"));
    }
    return ctmc::steady_state_probability(model.chain(), model.operational_states());
}

double availability(engine::AnalysisSession& session,
                    const engine::AnalysisSession::CompiledPtr& model) {
    return session.availability(model);
}

double combined_availability(double line1, double line2) {
    return line1 + line2 - line1 * line2;
}

ctmc::TransientOptions session_transient(engine::AnalysisSession& session) {
    ctmc::TransientOptions options;
    options.workspace = &session.workspace();
    return options;
}

std::vector<double> reliability_series(const CompiledModel& model,
                                       std::span<const double> times,
                                       const ctmc::TransientOptions& transient) {
    for (const auto& ru : model.model().repair_units) {
        if (ru.policy != RepairPolicy::None) {
            throw ModelError(
                "reliability must be computed on a repair-free model; "
                "compile without_repair(model) first");
        }
    }
    // Bounded until commutes with lumping when its masks are
    // block-constant: making psi-blocks absorbing in the quotient equals
    // lumping the transformed chain.  "down" is part of every model's lump
    // signature, so the quotient path is exact.
    // The quotient chain already stores the projected initial distribution.
    const auto q = auto_quotient(model);
    const ctmc::Ctmc& chain = q ? q->chain() : model.chain();
    const std::vector<bool> phi(chain.state_count(), true);
    const std::vector<bool>& down = chain.label("down");
    const auto p_down = ctmc::bounded_until_series(chain, chain.initial_distribution(),
                                                   phi, down, times, transient);
    std::vector<double> reliability(p_down.size());
    for (std::size_t i = 0; i < p_down.size(); ++i) reliability[i] = 1.0 - p_down[i];
    return reliability;
}

std::vector<double> survivability_series(const CompiledModel& model, const Disaster& disaster,
                                         double service_level, std::span<const double> times,
                                         const ctmc::TransientOptions& transient) {
    if (const auto q = auto_quotient(model)) {
        // Service levels are in the lump signature, so every service>=x
        // mask is block-constant and the quotient solve is exact.
        const std::vector<bool> phi(q->block_count(), true);
        const auto target = q->project_mask(model.service_at_least(service_level));
        const auto initial = q->project(model.disaster_distribution(disaster));
        return ctmc::bounded_until_series(q->chain(), initial, phi, target, times,
                                          transient);
    }
    const std::vector<bool> phi(model.state_count(), true);
    const std::vector<bool> target = model.service_at_least(service_level);
    const auto initial = model.disaster_distribution(disaster);
    return ctmc::bounded_until_series(model.chain(), initial, phi, target, times, transient);
}

double survivability(const CompiledModel& model, const Disaster& disaster,
                     double service_level, double time) {
    const std::vector<double> times{0.0, time};
    return survivability_series(model, disaster, service_level, times).back();
}

std::vector<double> instantaneous_cost_series(const CompiledModel& model,
                                              const Disaster& disaster,
                                              std::span<const double> times,
                                              const ctmc::TransientOptions& transient) {
    if (const auto q = auto_quotient(model)) {
        const rewards::RewardStructure cost(
            model.cost_reward().name(),
            q->project_values(model.cost_reward().state_rates()));
        const auto initial = q->project(model.disaster_distribution(disaster));
        return rewards::instantaneous_reward_series(q->chain(), initial, cost, times,
                                                    transient);
    }
    const auto initial = model.disaster_distribution(disaster);
    return rewards::instantaneous_reward_series(model.chain(), initial, model.cost_reward(),
                                                times, transient);
}

std::vector<double> accumulated_cost_series(const CompiledModel& model,
                                            const Disaster& disaster,
                                            std::span<const double> times,
                                            const ctmc::TransientOptions& transient) {
    if (const auto q = auto_quotient(model)) {
        const rewards::RewardStructure cost(
            model.cost_reward().name(),
            q->project_values(model.cost_reward().state_rates()));
        const auto initial = q->project(model.disaster_distribution(disaster));
        return rewards::accumulated_reward_series(q->chain(), initial, cost, times,
                                                  transient);
    }
    const auto initial = model.disaster_distribution(disaster);
    return rewards::accumulated_reward_series(model.chain(), initial, model.cost_reward(),
                                              times, transient);
}

double FusedSeriesPlan::reduce(std::span<const double> dist) const {
    if (!mask.empty()) return ctmc::mass_in(dist, mask);
    return linalg::dot(dist, weights);
}

FusedSeriesPlan survivability_fused_plan(const CompiledModel& model,
                                         double service_level) {
    FusedSeriesPlan plan;
    plan.quotient = auto_quotient(model);
    // Same transform construction as survivability_series →
    // bounded_until_series: phi = true everywhere, psi = the service mask,
    // chain = until_transform of the (quotient) chain.
    if (plan.quotient) {
        const std::vector<bool> phi(plan.quotient->block_count(), true);
        plan.mask = plan.quotient->project_mask(model.service_at_least(service_level));
        plan.transformed = std::make_shared<const ctmc::Ctmc>(
            ctmc::until_transform(plan.quotient->chain(), phi, plan.mask));
    } else {
        const std::vector<bool> phi(model.state_count(), true);
        plan.mask = model.service_at_least(service_level);
        plan.transformed = std::make_shared<const ctmc::Ctmc>(
            ctmc::until_transform(model.chain(), phi, plan.mask));
    }
    plan.chain = plan.transformed.get();
    return plan;
}

FusedSeriesPlan instantaneous_cost_fused_plan(const CompiledModel& model) {
    FusedSeriesPlan plan;
    plan.quotient = auto_quotient(model);
    if (plan.quotient) {
        plan.chain = &plan.quotient->chain();
        plan.weights = plan.quotient->project_values(model.cost_reward().state_rates());
    } else {
        plan.chain = &model.chain();
        plan.weights = model.cost_reward().state_rates();
    }
    return plan;
}

std::vector<double> fused_initial(const CompiledModel& model, const Disaster& disaster) {
    if (const auto q = auto_quotient(model)) {
        return q->project(model.disaster_distribution(disaster));
    }
    return model.disaster_distribution(disaster);
}

double steady_state_cost(const CompiledModel& model) {
    if (const auto q = auto_quotient(model)) {
        const rewards::RewardStructure cost(
            model.cost_reward().name(),
            q->project_values(model.cost_reward().state_rates()));
        return rewards::steady_state_reward(q->chain(), cost);
    }
    return rewards::steady_state_reward(model.chain(), model.cost_reward());
}

double steady_state_cost(engine::AnalysisSession& session,
                         const engine::AnalysisSession::CompiledPtr& model) {
    return session.steady_state_cost(model);
}

std::vector<double> service_levels(const ArcadeModel& model) {
    return phase_service_levels(model);
}

}  // namespace arcade::core
