// Arcade-XML: the XML input format for Arcade models (the paper's entry
// point, Fig. 1).  The schema covers the paper's concepts one-to-one:
//
//   <arcade name="line1">
//     <components>
//       <component name="pump1" mttf="500" mttr="1" failedCostRate="3"/>
//     </components>
//     <repairUnits>
//       <repairUnit name="ru1" policy="frf" crews="2" idleCostRate="1">
//         <serves component="pump1"/>
//       </repairUnit>
//     </repairUnits>
//     <spareUnits>
//       <spareUnit name="pumps" required="3">
//         <manages component="pump1"/>
//       </spareUnit>
//     </spareUnits>
//     <serviceModel>
//       <phase name="pumps" required="3" spareManaged="true">
//         <member component="pump1"/>
//       </phase>
//     </serviceModel>
//   </arcade>
//
// `policy` is one of none|dedicated|fcfs|frf|fff|priority; priority repair
// units give each <serves> a priority="n" attribute (smaller = first).
#ifndef ARCADE_ARCADE_XML_IO_HPP
#define ARCADE_ARCADE_XML_IO_HPP

#include <string>

#include "arcade/types.hpp"

namespace arcade::core {

/// Parses an Arcade-XML document.  Throws arcade::ParseError / ModelError.
[[nodiscard]] ArcadeModel model_from_xml(const std::string& xml_text);

/// Serialises a model to Arcade-XML (round-trips through model_from_xml).
[[nodiscard]] std::string model_to_xml(const ArcadeModel& model);

/// Convenience: reads a model from a file on disk.
[[nodiscard]] ArcadeModel load_model(const std::string& path);

/// Convenience: writes a model to a file on disk.
void save_model(const ArcadeModel& model, const std::string& path);

}  // namespace arcade::core

#endif  // ARCADE_ARCADE_XML_IO_HPP
