#include "arcade/fault_tree.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/errors.hpp"

namespace arcade::core {

FaultTree FaultTree::literal(std::size_t component) {
    FaultTree t;
    t.gate_ = Gate::Literal;
    t.component_ = component;
    return t;
}

FaultTree FaultTree::all_of(std::vector<FaultTree> children) {
    ARCADE_ASSERT(!children.empty(), "AND gate needs children");
    FaultTree t;
    t.gate_ = Gate::And;
    t.children_ = std::move(children);
    return t;
}

FaultTree FaultTree::any_of(std::vector<FaultTree> children) {
    ARCADE_ASSERT(!children.empty(), "OR gate needs children");
    FaultTree t;
    t.gate_ = Gate::Or;
    t.children_ = std::move(children);
    return t;
}

FaultTree FaultTree::k_of_n(std::size_t k, std::vector<FaultTree> children) {
    ARCADE_ASSERT(!children.empty(), "K-of-N gate needs children");
    ARCADE_ASSERT(k >= 1 && k <= children.size(), "K-of-N threshold out of range");
    FaultTree t;
    t.gate_ = Gate::KOfN;
    t.k_ = k;
    t.children_ = std::move(children);
    return t;
}

FaultTree FaultTree::spare_group(std::size_t required, std::vector<FaultTree> children) {
    ARCADE_ASSERT(!children.empty(), "spare gate needs children");
    ARCADE_ASSERT(required >= 1 && required <= children.size(),
                  "spare gate required count out of range");
    FaultTree t;
    t.gate_ = Gate::Spare;
    t.k_ = required;
    t.children_ = std::move(children);
    return t;
}

std::size_t FaultTree::component() const {
    ARCADE_ASSERT(gate_ == Gate::Literal, "component() on a gate node");
    return component_;
}

bool FaultTree::failed(const std::vector<bool>& component_up) const {
    switch (gate_) {
        case Gate::Literal:
            ARCADE_ASSERT(component_ < component_up.size(), "literal out of range");
            return !component_up[component_];
        case Gate::And:
            return std::all_of(children_.begin(), children_.end(),
                               [&](const FaultTree& c) { return c.failed(component_up); });
        case Gate::Or:
            return std::any_of(children_.begin(), children_.end(),
                               [&](const FaultTree& c) { return c.failed(component_up); });
        case Gate::KOfN: {
            std::size_t down = 0;
            for (const auto& c : children_) {
                if (c.failed(component_up)) ++down;
            }
            return down >= k_;
        }
        case Gate::Spare:
            // no service only when every member failed
            return std::all_of(children_.begin(), children_.end(),
                               [&](const FaultTree& c) { return c.failed(component_up); });
    }
    return false;
}

double FaultTree::service_level(const std::vector<bool>& component_up) const {
    switch (gate_) {
        case Gate::Literal:
            return component_up[component_] ? 1.0 : 0.0;
        case Gate::And: {
            // Fault-AND dualises to service-OR: mean of child service.
            double sum = 0.0;
            for (const auto& c : children_) sum += c.service_level(component_up);
            return sum / static_cast<double>(children_.size());
        }
        case Gate::Or: {
            // Fault-OR dualises to service-AND: min of child service.
            double best = 1.0;
            for (const auto& c : children_) {
                best = std::min(best, c.service_level(component_up));
            }
            return best;
        }
        case Gate::KOfN: {
            // "fails when >= k of n fail" needs n-k+1 working.
            double sum = 0.0;
            for (const auto& c : children_) sum += c.service_level(component_up);
            const double needed = static_cast<double>(children_.size() - k_ + 1);
            return std::min(1.0, sum / needed);
        }
        case Gate::Spare: {
            double sum = 0.0;
            for (const auto& c : children_) sum += c.service_level(component_up);
            return std::min(1.0, sum / static_cast<double>(k_));
        }
    }
    return 0.0;
}

namespace {

void collect_literals(const FaultTree& t, std::vector<std::size_t>& out) {
    if (t.gate() == FaultTree::Gate::Literal) {
        out.push_back(t.component());
        return;
    }
    for (const auto& c : t.children()) collect_literals(c, out);
}

/// All values a subtree can attain (exact, by combination of child values).
std::set<double> attainable(const FaultTree& t) {
    switch (t.gate()) {
        case FaultTree::Gate::Literal:
            return {0.0, 1.0};
        case FaultTree::Gate::And:
        case FaultTree::Gate::KOfN:
        case FaultTree::Gate::Spare: {
            // mean / spare-ratio of children: enumerate sums of child values.
            std::set<double> sums{0.0};
            for (const auto& c : t.children()) {
                std::set<double> next;
                for (double s : sums) {
                    for (double v : attainable(c)) next.insert(s + v);
                }
                sums = std::move(next);
            }
            std::set<double> out;
            double denom = static_cast<double>(t.children().size());
            if (t.gate() == FaultTree::Gate::KOfN) {
                denom = static_cast<double>(t.children().size() - t.threshold() + 1);
            } else if (t.gate() == FaultTree::Gate::Spare) {
                denom = static_cast<double>(t.threshold());
            }
            for (double s : sums) {
                out.insert(std::min(1.0, s / denom));
            }
            return out;
        }
        case FaultTree::Gate::Or: {
            // min of children: any child value can be the minimum.
            std::set<double> out;
            for (const auto& c : t.children()) {
                for (double v : attainable(c)) out.insert(v);
            }
            return out;
        }
    }
    return {};
}

}  // namespace

std::vector<double> FaultTree::attainable_service_levels(std::size_t /*component_count*/) const {
    const std::set<double> vals = attainable(*this);
    return {vals.begin(), vals.end()};
}

FaultTree FaultTree::down_tree(const ArcadeModel& model) {
    std::vector<FaultTree> phase_trees;
    for (const auto& phase : model.phases) {
        std::vector<FaultTree> lits;
        lits.reserve(phase.components.size());
        for (std::size_t idx : phase.components) lits.push_back(literal(idx));
        const std::size_t n = phase.components.size();
        // Phase is degraded below `required` when more than n - required
        // components failed.
        const std::size_t k = n - phase.required + 1;
        if (lits.size() == 1) {
            phase_trees.push_back(std::move(lits.front()));
        } else {
            phase_trees.push_back(k_of_n(k, std::move(lits)));
        }
    }
    return phase_trees.size() == 1 ? std::move(phase_trees.front())
                                   : any_of(std::move(phase_trees));
}

FaultTree FaultTree::total_failure_tree(const ArcadeModel& model) {
    std::vector<FaultTree> phase_trees;
    for (const auto& phase : model.phases) {
        std::vector<FaultTree> lits;
        lits.reserve(phase.components.size());
        for (std::size_t idx : phase.components) lits.push_back(literal(idx));
        if (lits.size() == 1) {
            phase_trees.push_back(std::move(lits.front()));
        } else if (phase.spare_managed) {
            phase_trees.push_back(spare_group(phase.required, std::move(lits)));
        } else {
            phase_trees.push_back(all_of(std::move(lits)));
        }
    }
    return phase_trees.size() == 1 ? std::move(phase_trees.front())
                                   : any_of(std::move(phase_trees));
}

double phase_service_level(const ArcadeModel& model,
                           const std::vector<std::size_t>& up_per_phase) {
    ARCADE_ASSERT(up_per_phase.size() == model.phases.size(), "phase count mismatch");
    double service = 1.0;
    for (std::size_t p = 0; p < model.phases.size(); ++p) {
        const auto& phase = model.phases[p];
        const double up = static_cast<double>(up_per_phase[p]);
        double s = 0.0;
        if (phase.spare_managed) {
            s = std::min(1.0, up / static_cast<double>(phase.required));
        } else {
            s = up / static_cast<double>(phase.components.size());
        }
        service = std::min(service, s);
    }
    return service;
}

std::vector<double> phase_service_levels(const ArcadeModel& model) {
    std::set<double> levels;
    // Enumerate per-phase attainable values, then all minima combinations:
    // the minimum over phases ranges over the union of per-phase values that
    // are <= every other phase's maximum (1.0), i.e. simply the union.
    levels.insert(0.0);
    levels.insert(1.0);
    for (const auto& phase : model.phases) {
        const std::size_t n = phase.components.size();
        for (std::size_t up = 0; up <= n; ++up) {
            double s = 0.0;
            if (phase.spare_managed) {
                s = std::min(1.0, static_cast<double>(up) / static_cast<double>(phase.required));
            } else {
                s = static_cast<double>(up) / static_cast<double>(n);
            }
            levels.insert(s);
        }
    }
    return {levels.begin(), levels.end()};
}

}  // namespace arcade::core
