// Compile-time symmetry analysis over a ModuleSystem: groups module
// instances whose guard/rate/assignment programs are identical up to a
// renaming of the instance's own variables — the replicated pump/filter
// copies of the watertree translation are symmetric by construction.
//
// Detection is conservative (a claimed orbit is always a genuine chain
// automorphism group; a missed one only costs reduction):
//
//   1. Candidate modules use only interleaved (unsynchronised) commands
//      that read and write the module's own variables and system constants.
//   2. Candidates are grouped by a *template*: the module serialised with
//      its k-th own variable renamed to a positional placeholder — equal
//      templates mean identical programs up to renaming (same variable
//      ranges and initial values included, so the initial state is fixed by
//      every swap).
//   3. Every adjacent transposition of a group (swap instance i's variables
//      with instance i+1's, positionally) must leave the *rest* of the
//      system invariant: labels, reward items and the other modules'
//      commands are compared as normalised forms in which chains of
//      commutative-associative operators (+, *, &, |, min, max — and the
//      symmetric comparisons =, !=) are flattened and sorted, so the usual
//      symmetric idioms (`p1+p2+p3 >= 2`) are recognised as invariant.
//      Adjacent transpositions generate the full symmetric group, so the
//      checked generators prove invariance under every permutation.
//
// The resulting orbits translate into an engine::StateSymmetry over the
// flattened variable layout (state_symmetry), which explore() hands to
// explore_bfs so the explored chain is the symmetry quotient.
#ifndef ARCADE_MODULES_SYMMETRY_HPP
#define ARCADE_MODULES_SYMMETRY_HPP

#include <cstddef>
#include <vector>

#include "engine/symmetry.hpp"
#include "modules/modules.hpp"

namespace arcade::modules {

/// One group of interchangeable module instances (indices into
/// ModuleSystem::modules, ascending, size >= 2).
struct ModuleOrbit {
    std::vector<std::size_t> modules;
};

/// Result of the symmetry analysis.
struct SymmetryAnalysis {
    std::vector<ModuleOrbit> orbits;

    [[nodiscard]] bool trivial() const noexcept { return orbits.empty(); }

    /// The engine-level canonicalizer over the flattened variable order
    /// (ModuleSystem::all_variables): instance j of an orbit is the
    /// contiguous field range of that module's variables.  `system` must be
    /// the system the analysis was computed for.
    [[nodiscard]] engine::StateSymmetry state_symmetry(const ModuleSystem& system) const;
};

/// Detects interchangeable module instances (see the header comment for the
/// exact soundness argument).  Never throws on well-formed systems; modules
/// outside the conservative fragment simply stay unreduced.
[[nodiscard]] SymmetryAnalysis analyze_symmetry(const ModuleSystem& system);

}  // namespace arcade::modules

#endif  // ARCADE_MODULES_SYMMETRY_HPP
