// Stochastic reactive modules in CTMC mode — the intermediate representation
// the paper compiles Arcade models into (Alur & Henzinger's reactive modules
// as realised by the PRISM language).
//
// A system is a set of modules, each owning bounded variables and guarded
// commands  [action] guard -> rate : (x'=e) & (y'=f);  commands with the
// same action label synchronise across modules (rates multiply, PRISM CTMC
// semantics); commands with the empty action interleave.
#ifndef ARCADE_MODULES_MODULES_HPP
#define ARCADE_MODULES_MODULES_HPP

#include <map>
#include <string>
#include <vector>

#include "expr/expr.hpp"

namespace arcade::modules {

enum class VarType { Bool, Int };

/// A bounded state variable.  Bool variables use bounds [0,1].
struct VarDecl {
    std::string name;
    VarType type = VarType::Int;
    long long low = 0;
    long long high = 1;
    long long init = 0;
};

/// One assignment x' = e within an update.
struct Assignment {
    std::string variable;
    expr::Expr value;
};

/// One stochastic alternative of a command: rate expression plus updates.
struct Alternative {
    expr::Expr rate;
    std::vector<Assignment> assignments;
};

/// A guarded command.  `action` empty means interleaved (unsynchronised).
struct Command {
    std::string action;
    expr::Expr guard;
    std::vector<Alternative> alternatives;
};

/// A module: named variables plus commands over the system's variables.
struct Module {
    std::string name;
    std::vector<VarDecl> variables;
    std::vector<Command> commands;

    /// Synchronising alphabet: all non-empty actions in `commands`.
    [[nodiscard]] std::vector<std::string> alphabet() const;
};

/// A guarded reward item: states satisfying `guard` earn `rate` per hour.
struct RewardItem {
    expr::Expr guard;
    expr::Expr rate;
};

struct RewardDecl {
    std::string name;
    std::vector<RewardItem> items;
};

/// A complete system of modules (the "PRISM model").
struct ModuleSystem {
    std::string name = "system";
    std::map<std::string, expr::Value> constants;
    std::vector<Module> modules;
    std::map<std::string, expr::Expr> labels;   ///< named state formulas
    std::vector<RewardDecl> rewards;

    [[nodiscard]] const Module* find_module(const std::string& module_name) const;
    [[nodiscard]] const RewardDecl* find_reward(const std::string& reward_name) const;
    [[nodiscard]] std::vector<VarDecl> all_variables() const;
};

}  // namespace arcade::modules

#endif  // ARCADE_MODULES_MODULES_HPP
