#include "modules/modules.hpp"

#include <algorithm>

namespace arcade::modules {

std::vector<std::string> Module::alphabet() const {
    std::vector<std::string> out;
    for (const auto& c : commands) {
        if (!c.action.empty() && std::find(out.begin(), out.end(), c.action) == out.end()) {
            out.push_back(c.action);
        }
    }
    return out;
}

const Module* ModuleSystem::find_module(const std::string& module_name) const {
    for (const auto& m : modules) {
        if (m.name == module_name) return &m;
    }
    return nullptr;
}

const RewardDecl* ModuleSystem::find_reward(const std::string& reward_name) const {
    for (const auto& r : rewards) {
        if (r.name == reward_name) return &r;
    }
    return nullptr;
}

std::vector<VarDecl> ModuleSystem::all_variables() const {
    std::vector<VarDecl> out;
    for (const auto& m : modules) {
        out.insert(out.end(), m.variables.begin(), m.variables.end());
    }
    return out;
}

}  // namespace arcade::modules
