// Explicit-state exploration of a ModuleSystem into a labelled CTMC.
//
// Performs breadth-first reachability from the initial valuation, applying
// interleaved commands directly and synchronised commands as the product of
// enabled alternatives per participating module (rates multiply — PRISM CTMC
// semantics).  Produces the CTMC, the per-state variable valuations (held in
// the engine's packed state store), label bitsets and reward structures.
//
// Exploration runs on the engine layer: states are bit-packed into the
// arena-backed store and the BFS is sharded across worker threads
// (ExploreOptions::threads); any thread count produces the identical CTMC.
#ifndef ARCADE_MODULES_EXPLORER_HPP
#define ARCADE_MODULES_EXPLORER_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "engine/state_store.hpp"
#include "engine/symmetry.hpp"
#include "expr/vm.hpp"
#include "modules/modules.hpp"
#include "rewards/rewards.hpp"

namespace arcade::modules {

struct ExploreOptions {
    std::size_t max_states = 50'000'000;  ///< explosion guard
    /// Worker threads for the sharded BFS; 0 = hardware concurrency.
    unsigned threads = 0;
    /// Evaluator for guards/rates/assignments/labels/rewards.  The default
    /// compiles every expression to bytecode once per model (expr::vm);
    /// ARCADE_EVAL=codegen batches all of the model's programs into one
    /// generated C++ unit compiled out of process and dlopen'ed
    /// (expr/codegen, falling back to the VM when no toolchain is
    /// available); the tree interpreter (ARCADE_EVAL=interp) is the root
    /// oracle — all three produce bitwise-identical chains.
    expr::EvalMode eval = expr::default_eval_mode();
    /// On-the-fly symmetry reduction (ARCADE_SYMMETRY=off|auto): under Auto
    /// the explorer runs modules::analyze_symmetry and explores the orbit
    /// quotient directly whenever interchangeable module instances are
    /// proven (see modules/symmetry.hpp); labels and rewards are evaluated
    /// on the orbit representatives, which the analysis guarantees is exact.
    engine::SymmetryPolicy symmetry = engine::default_symmetry_policy();
};

/// Result of exploring a module system.
struct ExploredModel {
    ctmc::Ctmc chain;                         ///< with labels installed
    std::vector<std::string> variable_names;  ///< flattened declaration order
    engine::StateStore store;                 ///< packed valuation per state index
    std::map<std::string, rewards::RewardStructure> reward_structures;
    /// True when the chain is the symmetry quotient over nontrivial orbits.
    bool symmetry_reduced = false;
    /// Exact full-chain state count recovered from orbit sizes (equals
    /// state_count() when no symmetry was applied); wall seconds of the
    /// post-exploration orbit accounting pass.
    double symmetry_full_states = 0.0;
    double symmetry_seconds = 0.0;

    [[nodiscard]] std::size_t state_count() const noexcept { return store.size(); }

    /// Index of a variable in `variable_names` (throws if absent).
    [[nodiscard]] std::size_t variable_index(const std::string& name) const;
    /// Value of variable `name` in state `state`.
    [[nodiscard]] std::int64_t value_of(std::size_t state, const std::string& name) const;
    /// Full valuation of one state (declaration order).
    [[nodiscard]] std::vector<std::int64_t> valuation(std::size_t state) const;
    /// Adapter materialising every valuation as the seed's vector-of-vectors
    /// (XML/PRISM export paths that need all states at once).
    [[nodiscard]] std::vector<std::vector<std::int64_t>> states() const;
};

/// Explores `system` from its initial valuation.  Throws ModelError on
/// unbounded variables, blocked-but-mandatory synchronisation inconsistencies,
/// negative rates, or state-space overflow.
[[nodiscard]] ExploredModel explore(const ModuleSystem& system,
                                    const ExploreOptions& options = {});

/// Evaluates a boolean expression over every explored state (e.g. an ad-hoc
/// label that was not registered before exploration).  The predicate is
/// compiled once and run per state under `eval` (VM by default).
[[nodiscard]] std::vector<bool> evaluate_state_predicate(
    const ExploredModel& model, const ModuleSystem& system, const expr::Expr& predicate,
    expr::EvalMode eval = expr::default_eval_mode());

}  // namespace arcade::modules

#endif  // ARCADE_MODULES_EXPLORER_HPP
