#include "modules/explorer.hpp"

#include <algorithm>
#include <unordered_map>

#include "linalg/csr_matrix.hpp"
#include "support/errors.hpp"

namespace arcade::modules {

namespace {

using State = std::vector<std::int64_t>;

struct StateHash {
    std::size_t operator()(const State& s) const noexcept {
        std::size_t h = 1469598103934665603ull;  // FNV-1a
        for (std::int64_t v : s) {
            h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull;
            h *= 1099511628211ull;
        }
        return h;
    }
};

/// Environment over a flat state vector with constant fallback.  Bool
/// variables surface as boolean values so guards like `!b` type-check.
class StateEnv final : public expr::Environment {
public:
    StateEnv(const std::map<std::string, expr::Value>& constants,
             const std::unordered_map<std::string, std::size_t>& var_index,
             const std::vector<bool>& is_bool)
        : constants_(constants), var_index_(var_index), is_bool_(is_bool) {}

    void bind(const State* state) { state_ = state; }

    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = var_index_.find(name);
        if (it != var_index_.end()) {
            ARCADE_ASSERT(state_ != nullptr, "unbound state environment");
            const std::int64_t raw = (*state_)[it->second];
            if (is_bool_[it->second]) return expr::Value(raw != 0);
            return expr::Value(static_cast<long long>(raw));
        }
        const auto cit = constants_.find(name);
        if (cit != constants_.end()) return cit->second;
        throw ModelError("unknown identifier '" + name + "' in expression");
    }

private:
    const std::map<std::string, expr::Value>& constants_;
    const std::unordered_map<std::string, std::size_t>& var_index_;
    const std::vector<bool>& is_bool_;
    const State* state_ = nullptr;
};

struct PendingTransition {
    std::size_t source;
    std::size_t target;
    double rate;
};

}  // namespace

std::size_t ExploredModel::variable_index(const std::string& name) const {
    for (std::size_t i = 0; i < variable_names.size(); ++i) {
        if (variable_names[i] == name) return i;
    }
    throw ModelError("unknown variable '" + name + "'");
}

std::int64_t ExploredModel::value_of(std::size_t state, const std::string& name) const {
    ARCADE_ASSERT(state < states.size(), "state index out of range");
    return states[state][variable_index(name)];
}

ExploredModel explore(const ModuleSystem& system, const ExploreOptions& options) {
    // Flatten variables; remember their bounds.
    std::vector<VarDecl> vars = system.all_variables();
    if (vars.empty()) throw ModelError("module system has no variables");
    std::unordered_map<std::string, std::size_t> var_index;
    std::vector<bool> is_bool(vars.size(), false);
    for (std::size_t i = 0; i < vars.size(); ++i) {
        if (!var_index.emplace(vars[i].name, i).second) {
            throw ModelError("duplicate variable '" + vars[i].name + "'");
        }
        is_bool[i] = vars[i].type == VarType::Bool;
    }

    StateEnv env(system.constants, var_index, is_bool);

    // Group synchronising commands by action.
    struct SyncGroup {
        std::string action;
        // per participating module: its commands with this action
        std::vector<std::vector<const Command*>> per_module;
    };
    std::vector<const Command*> interleaved;
    std::map<std::string, std::vector<std::vector<const Command*>>> sync_map;
    for (const auto& module : system.modules) {
        std::map<std::string, std::vector<const Command*>> local;
        for (const auto& cmd : module.commands) {
            if (cmd.action.empty()) {
                interleaved.push_back(&cmd);
            } else {
                local[cmd.action].push_back(&cmd);
            }
        }
        for (auto& [action, cmds] : local) {
            sync_map[action].push_back(std::move(cmds));
        }
    }

    // Initial state.
    State initial(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i) {
        const auto& v = vars[i];
        if (v.init < v.low || v.init > v.high) {
            throw ModelError("initial value of '" + v.name + "' violates its bounds");
        }
        initial[i] = v.init;
    }

    std::unordered_map<State, std::size_t, StateHash> index;
    std::vector<State> states;
    std::vector<PendingTransition> transitions;

    index.emplace(initial, 0);
    states.push_back(initial);

    auto apply_assignments = [&](const State& from,
                                 const std::vector<const Alternative*>& alts) {
        State to = from;
        env.bind(&from);
        for (const Alternative* alt : alts) {
            for (const auto& asg : alt->assignments) {
                const auto it = var_index.find(asg.variable);
                if (it == var_index.end()) {
                    throw ModelError("assignment to unknown variable '" + asg.variable + "'");
                }
                const expr::Value v = asg.value.evaluate(env);
                const std::int64_t raw =
                    v.is_bool() ? static_cast<std::int64_t>(v.as_bool()) : v.as_int();
                const auto& decl = vars[it->second];
                if (raw < decl.low || raw > decl.high) {
                    throw ModelError("assignment drives '" + asg.variable + "' to " +
                                     std::to_string(raw) + ", outside [" +
                                     std::to_string(decl.low) + "," +
                                     std::to_string(decl.high) + "]");
                }
                to[it->second] = raw;
            }
        }
        return to;
    };

    for (std::size_t si = 0; si < states.size(); ++si) {
        if (states.size() > options.max_states) {
            throw ModelError("state-space explosion: more than " +
                             std::to_string(options.max_states) + " states");
        }
        const State current = states[si];  // copy: `states` may reallocate
        env.bind(&current);

        auto enqueue = [&](State&& target, double rate) {
            if (rate < 0.0) throw ModelError("negative transition rate");
            if (rate == 0.0) return;
            const auto [it, inserted] = index.emplace(std::move(target), states.size());
            if (inserted) states.push_back(it->first);
            transitions.push_back(PendingTransition{si, it->second, rate});
        };

        // Interleaved commands.
        for (const Command* cmd : interleaved) {
            env.bind(&current);
            if (!cmd->guard.evaluate(env).as_bool()) continue;
            for (const auto& alt : cmd->alternatives) {
                env.bind(&current);
                const double rate = alt.rate.evaluate(env).as_double();
                State target = apply_assignments(current, {&alt});
                enqueue(std::move(target), rate);
            }
        }

        // Synchronised commands: product over participating modules.
        for (const auto& [action, per_module] : sync_map) {
            // Collect enabled (alternative, rate) tuples per module.
            std::vector<std::vector<std::pair<const Alternative*, double>>> enabled;
            bool blocked = false;
            for (const auto& cmds : per_module) {
                std::vector<std::pair<const Alternative*, double>> here;
                for (const Command* cmd : cmds) {
                    env.bind(&current);
                    if (!cmd->guard.evaluate(env).as_bool()) continue;
                    for (const auto& alt : cmd->alternatives) {
                        env.bind(&current);
                        here.emplace_back(&alt, alt.rate.evaluate(env).as_double());
                    }
                }
                if (here.empty()) {
                    blocked = true;
                    break;
                }
                enabled.push_back(std::move(here));
            }
            if (blocked || enabled.empty()) continue;

            // Cartesian product.
            std::vector<std::size_t> pick(enabled.size(), 0);
            while (true) {
                double rate = 1.0;
                std::vector<const Alternative*> alts;
                alts.reserve(enabled.size());
                for (std::size_t m = 0; m < enabled.size(); ++m) {
                    alts.push_back(enabled[m][pick[m]].first);
                    rate *= enabled[m][pick[m]].second;
                }
                State target = apply_assignments(current, alts);
                enqueue(std::move(target), rate);

                // advance the odometer
                std::size_t d = 0;
                for (; d < pick.size(); ++d) {
                    if (++pick[d] < enabled[d].size()) break;
                    pick[d] = 0;
                }
                if (d == pick.size()) break;
            }
        }

    }

    // Build the rate matrix.
    linalg::CsrBuilder builder(states.size(), states.size());
    for (const auto& t : transitions) {
        if (t.target == t.source) continue;  // drop rate self-loops (CTMC no-ops)
        builder.add(t.source, t.target, t.rate);
    }

    std::vector<double> init_dist(states.size(), 0.0);
    init_dist[0] = 1.0;
    ctmc::Ctmc chain(builder.build(), std::move(init_dist));

    ExploredModel out{std::move(chain), {}, {}, {}};
    out.variable_names.reserve(vars.size());
    for (const auto& v : vars) out.variable_names.push_back(v.name);
    out.states = std::move(states);

    // Labels.
    for (const auto& [name, predicate] : system.labels) {
        std::vector<bool> bits(out.states.size(), false);
        for (std::size_t s = 0; s < out.states.size(); ++s) {
            env.bind(&out.states[s]);
            bits[s] = predicate.evaluate(env).as_bool();
        }
        out.chain.set_label(name, std::move(bits));
    }

    // Rewards.
    for (const auto& decl : system.rewards) {
        std::vector<double> rates(out.states.size(), 0.0);
        for (std::size_t s = 0; s < out.states.size(); ++s) {
            env.bind(&out.states[s]);
            double r = 0.0;
            for (const auto& item : decl.items) {
                if (item.guard.evaluate(env).as_bool()) {
                    r += item.rate.evaluate(env).as_double();
                }
            }
            rates[s] = r;
        }
        out.reward_structures.emplace(decl.name,
                                      rewards::RewardStructure(decl.name, std::move(rates)));
    }
    return out;
}

std::vector<bool> evaluate_state_predicate(const ExploredModel& model,
                                           const ModuleSystem& system,
                                           const expr::Expr& predicate) {
    std::unordered_map<std::string, std::size_t> var_index;
    for (std::size_t i = 0; i < model.variable_names.size(); ++i) {
        var_index.emplace(model.variable_names[i], i);
    }
    const auto vars = system.all_variables();
    std::vector<bool> is_bool(model.variable_names.size(), false);
    for (const auto& v : vars) {
        const auto it = var_index.find(v.name);
        if (it != var_index.end()) is_bool[it->second] = v.type == VarType::Bool;
    }
    StateEnv env(system.constants, var_index, is_bool);
    std::vector<bool> bits(model.states.size(), false);
    for (std::size_t s = 0; s < model.states.size(); ++s) {
        env.bind(&model.states[s]);
        bits[s] = predicate.evaluate(env).as_bool();
    }
    return bits;
}

}  // namespace arcade::modules
