#include "modules/explorer.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "engine/explore.hpp"
#include "linalg/csr_matrix.hpp"
#include "support/errors.hpp"

namespace arcade::modules {

namespace {

using State = std::vector<std::int64_t>;

/// Environment over a flat valuation with constant fallback.  Bool variables
/// surface as boolean values so guards like `!b` type-check.
class StateEnv final : public expr::Environment {
public:
    StateEnv(const std::map<std::string, expr::Value>& constants,
             const std::unordered_map<std::string, std::size_t>& var_index,
             const std::vector<bool>& is_bool)
        : constants_(constants), var_index_(var_index), is_bool_(is_bool) {}

    void bind(std::span<const std::int64_t> state) { state_ = state; }

    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = var_index_.find(name);
        if (it != var_index_.end()) {
            ARCADE_ASSERT(!state_.empty(), "unbound state environment");
            const std::int64_t raw = state_[it->second];
            if (is_bool_[it->second]) return expr::Value(raw != 0);
            return expr::Value(static_cast<long long>(raw));
        }
        const auto cit = constants_.find(name);
        if (cit != constants_.end()) return cit->second;
        throw ModelError("unknown identifier '" + name + "' in expression");
    }

private:
    const std::map<std::string, expr::Value>& constants_;
    const std::unordered_map<std::string, std::size_t>& var_index_;
    const std::vector<bool>& is_bool_;
    std::span<const std::int64_t> state_;
};

/// Commands of one action across the participating modules (one inner vector
/// per module that owns commands with this action).
struct SyncGroup {
    std::string action;
    std::vector<std::vector<const Command*>> per_module;
};

/// Immutable exploration context shared by all worker threads.
struct ExploreContext {
    const ModuleSystem& system;
    std::vector<VarDecl> vars;
    std::unordered_map<std::string, std::size_t> var_index;
    std::vector<bool> is_bool;
    std::vector<const Command*> interleaved;
    std::vector<SyncGroup> sync_groups;
};

ExploreContext make_context(const ModuleSystem& system) {
    ExploreContext ctx{system, system.all_variables(), {}, {}, {}, {}};
    if (ctx.vars.empty()) throw ModelError("module system has no variables");
    ctx.is_bool.resize(ctx.vars.size(), false);
    for (std::size_t i = 0; i < ctx.vars.size(); ++i) {
        if (!ctx.var_index.emplace(ctx.vars[i].name, i).second) {
            throw ModelError("duplicate variable '" + ctx.vars[i].name + "'");
        }
        ctx.is_bool[i] = ctx.vars[i].type == VarType::Bool;
    }

    // Group synchronising commands by action.  The hot-path grouping maps
    // are unordered; the resulting groups are sorted by action name so the
    // exploration order (and hence state numbering) is deterministic.
    std::unordered_map<std::string, std::size_t> group_index;
    for (const auto& module : system.modules) {
        std::unordered_map<std::string, std::vector<const Command*>> local;
        std::vector<std::string> local_order;
        for (const auto& cmd : module.commands) {
            if (cmd.action.empty()) {
                ctx.interleaved.push_back(&cmd);
            } else {
                auto [it, inserted] = local.try_emplace(cmd.action);
                if (inserted) local_order.push_back(cmd.action);
                it->second.push_back(&cmd);
            }
        }
        for (const auto& action : local_order) {
            auto [it, inserted] = group_index.try_emplace(action, ctx.sync_groups.size());
            if (inserted) ctx.sync_groups.push_back(SyncGroup{action, {}});
            ctx.sync_groups[it->second].per_module.push_back(std::move(local[action]));
        }
    }
    std::sort(ctx.sync_groups.begin(), ctx.sync_groups.end(),
              [](const SyncGroup& a, const SyncGroup& b) { return a.action < b.action; });
    return ctx;
}

engine::StateLayout make_layout(const std::vector<VarDecl>& vars) {
    std::vector<engine::FieldSpec> fields;
    fields.reserve(vars.size());
    for (const auto& v : vars) fields.push_back(engine::FieldSpec{v.low, v.high});
    return engine::StateLayout(fields);
}

/// Per-thread successor generator over the shared context.
class Worker {
public:
    explicit Worker(const ExploreContext& ctx)
        : ctx_(ctx), env_(ctx.system.constants, ctx.var_index, ctx.is_bool) {}

    template <typename Emit>
    void operator()(std::span<const std::int64_t> current, Emit&& emit) {
        // Interleaved commands.
        for (const Command* cmd : ctx_.interleaved) {
            env_.bind(current);
            if (!cmd->guard.evaluate(env_).as_bool()) continue;
            for (const auto& alt : cmd->alternatives) {
                env_.bind(current);
                const double rate = alt.rate.evaluate(env_).as_double();
                apply_assignments(current, {&alt});
                emit(std::span<const std::int64_t>(target_), rate);
            }
        }

        // Synchronised commands: product over participating modules.
        for (const auto& group : ctx_.sync_groups) {
            enabled_.clear();
            bool blocked = false;
            for (const auto& cmds : group.per_module) {
                std::vector<std::pair<const Alternative*, double>> here;
                for (const Command* cmd : cmds) {
                    env_.bind(current);
                    if (!cmd->guard.evaluate(env_).as_bool()) continue;
                    for (const auto& alt : cmd->alternatives) {
                        env_.bind(current);
                        here.emplace_back(&alt, alt.rate.evaluate(env_).as_double());
                    }
                }
                if (here.empty()) {
                    blocked = true;
                    break;
                }
                enabled_.push_back(std::move(here));
            }
            if (blocked || enabled_.empty()) continue;

            // Cartesian product.
            pick_.assign(enabled_.size(), 0);
            while (true) {
                double rate = 1.0;
                alts_.clear();
                for (std::size_t m = 0; m < enabled_.size(); ++m) {
                    alts_.push_back(enabled_[m][pick_[m]].first);
                    rate *= enabled_[m][pick_[m]].second;
                }
                apply_assignments(current, alts_);
                emit(std::span<const std::int64_t>(target_), rate);

                // advance the odometer
                std::size_t d = 0;
                for (; d < pick_.size(); ++d) {
                    if (++pick_[d] < enabled_[d].size()) break;
                    pick_[d] = 0;
                }
                if (d == pick_.size()) break;
            }
        }
    }

private:
    void apply_assignments(std::span<const std::int64_t> from,
                           std::span<const Alternative* const> alts) {
        target_.assign(from.begin(), from.end());
        env_.bind(from);
        for (const Alternative* alt : alts) {
            for (const auto& asg : alt->assignments) {
                const auto it = ctx_.var_index.find(asg.variable);
                if (it == ctx_.var_index.end()) {
                    throw ModelError("assignment to unknown variable '" + asg.variable + "'");
                }
                const expr::Value v = asg.value.evaluate(env_);
                const std::int64_t raw =
                    v.is_bool() ? static_cast<std::int64_t>(v.as_bool()) : v.as_int();
                const auto& decl = ctx_.vars[it->second];
                if (raw < decl.low || raw > decl.high) {
                    throw ModelError("assignment drives '" + asg.variable + "' to " +
                                     std::to_string(raw) + ", outside [" +
                                     std::to_string(decl.low) + "," +
                                     std::to_string(decl.high) + "]");
                }
                target_[it->second] = raw;
            }
        }
    }

    void apply_assignments(std::span<const std::int64_t> from,
                           std::initializer_list<const Alternative*> alts) {
        apply_assignments(from, std::span<const Alternative* const>(alts.begin(), alts.size()));
    }

    const ExploreContext& ctx_;
    StateEnv env_;
    State target_;
    std::vector<std::vector<std::pair<const Alternative*, double>>> enabled_;
    std::vector<std::size_t> pick_;
    std::vector<const Alternative*> alts_;
};

}  // namespace

std::size_t ExploredModel::variable_index(const std::string& name) const {
    for (std::size_t i = 0; i < variable_names.size(); ++i) {
        if (variable_names[i] == name) return i;
    }
    throw ModelError("unknown variable '" + name + "'");
}

std::int64_t ExploredModel::value_of(std::size_t state, const std::string& name) const {
    ARCADE_ASSERT(state < store.size(), "state index out of range");
    return store.value(state, variable_index(name));
}

std::vector<std::int64_t> ExploredModel::valuation(std::size_t state) const {
    std::vector<std::int64_t> out(variable_names.size());
    store.unpack(state, std::span<std::int64_t>(out));
    return out;
}

std::vector<std::vector<std::int64_t>> ExploredModel::states() const {
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(store.size());
    for (std::size_t s = 0; s < store.size(); ++s) out.push_back(valuation(s));
    return out;
}

ExploredModel explore(const ModuleSystem& system, const ExploreOptions& options) {
    const ExploreContext ctx = make_context(system);

    State initial(ctx.vars.size());
    for (std::size_t i = 0; i < ctx.vars.size(); ++i) {
        const auto& v = ctx.vars[i];
        if (v.init < v.low || v.init > v.high) {
            throw ModelError("initial value of '" + v.name + "' violates its bounds");
        }
        initial[i] = v.init;
    }

    engine::EngineOptions engine_options;
    engine_options.max_states = options.max_states;
    engine_options.threads = options.threads;
    auto explored = engine::explore_bfs(
        make_layout(ctx.vars), initial, [&ctx] { return Worker(ctx); }, engine_options);
    engine::StateStore store = std::move(explored.store);

    // Build the rate matrix.
    linalg::CsrBuilder builder(store.size(), store.size());
    for (const auto& t : explored.transitions) {
        if (t.target == t.source) continue;  // drop rate self-loops (CTMC no-ops)
        builder.add(t.source, t.target, t.rate);
    }

    std::vector<double> init_dist(store.size(), 0.0);
    init_dist[0] = 1.0;
    ctmc::Ctmc chain(builder.build(), std::move(init_dist));

    ExploredModel out{std::move(chain), {}, std::move(store), {}};
    out.variable_names.reserve(ctx.vars.size());
    for (const auto& v : ctx.vars) out.variable_names.push_back(v.name);

    // Labels and rewards: one serial sweep over the decoded states.
    StateEnv env(system.constants, ctx.var_index, ctx.is_bool);
    State values(ctx.vars.size());
    const std::size_t n = out.store.size();
    for (const auto& [name, predicate] : system.labels) {
        std::vector<bool> bits(n, false);
        for (std::size_t s = 0; s < n; ++s) {
            out.store.unpack(s, std::span<std::int64_t>(values));
            env.bind(values);
            bits[s] = predicate.evaluate(env).as_bool();
        }
        out.chain.set_label(name, std::move(bits));
    }
    for (const auto& decl : system.rewards) {
        std::vector<double> rates(n, 0.0);
        for (std::size_t s = 0; s < n; ++s) {
            out.store.unpack(s, std::span<std::int64_t>(values));
            env.bind(values);
            double r = 0.0;
            for (const auto& item : decl.items) {
                if (item.guard.evaluate(env).as_bool()) {
                    r += item.rate.evaluate(env).as_double();
                }
            }
            rates[s] = r;
        }
        out.reward_structures.emplace(decl.name,
                                      rewards::RewardStructure(decl.name, std::move(rates)));
    }
    return out;
}

std::vector<bool> evaluate_state_predicate(const ExploredModel& model,
                                           const ModuleSystem& system,
                                           const expr::Expr& predicate) {
    std::unordered_map<std::string, std::size_t> var_index;
    for (std::size_t i = 0; i < model.variable_names.size(); ++i) {
        var_index.emplace(model.variable_names[i], i);
    }
    const auto vars = system.all_variables();
    std::vector<bool> is_bool(model.variable_names.size(), false);
    for (const auto& v : vars) {
        const auto it = var_index.find(v.name);
        if (it != var_index.end()) is_bool[it->second] = v.type == VarType::Bool;
    }
    StateEnv env(system.constants, var_index, is_bool);
    std::vector<bool> bits(model.store.size(), false);
    State values(model.variable_names.size());
    for (std::size_t s = 0; s < model.store.size(); ++s) {
        model.store.unpack(s, std::span<std::int64_t>(values));
        env.bind(values);
        bits[s] = predicate.evaluate(env).as_bool();
    }
    return bits;
}

}  // namespace arcade::modules
