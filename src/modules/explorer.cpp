#include "modules/explorer.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include <chrono>

#include "engine/explore.hpp"
#include "expr/codegen.hpp"
#include "linalg/csr_matrix.hpp"
#include "modules/symmetry.hpp"
#include "support/errors.hpp"

namespace arcade::modules {

namespace {

using State = std::vector<std::int64_t>;

/// Environment over a flat valuation with constant fallback.  Bool variables
/// surface as boolean values so guards like `!b` type-check.  This is the
/// interpreter (oracle) path; the VM path reads the same valuation through
/// slot-indexed loads instead.
class StateEnv final : public expr::Environment {
public:
    StateEnv(const std::map<std::string, expr::Value>& constants,
             const std::unordered_map<std::string, std::size_t>& var_index,
             const std::vector<bool>& is_bool)
        : constants_(constants), var_index_(var_index), is_bool_(is_bool) {}

    void bind(std::span<const std::int64_t> state) { state_ = state; }

    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = var_index_.find(name);
        if (it != var_index_.end()) {
            ARCADE_ASSERT(!state_.empty(), "unbound state environment");
            const std::int64_t raw = state_[it->second];
            if (is_bool_[it->second]) return expr::Value(raw != 0);
            return expr::Value(static_cast<long long>(raw));
        }
        const auto cit = constants_.find(name);
        if (cit != constants_.end()) return cit->second;
        throw ModelError("unknown identifier '" + name + "' in expression");
    }

private:
    const std::map<std::string, expr::Value>& constants_;
    const std::unordered_map<std::string, std::size_t>& var_index_;
    const std::vector<bool>& is_bool_;
    std::span<const std::int64_t> state_;
};

/// One assignment with its target resolved to a slot index.  `fn` indexes
/// the value program inside the model's native unit (EvalMode::Codegen).
struct CompiledAssignment {
    std::size_t slot;
    expr::Program value;
    std::uint32_t fn = 0;
};

/// One stochastic alternative, pre-compiled.
struct CompiledAlternative {
    expr::Program rate;
    std::vector<CompiledAssignment> assignments;
    std::uint32_t rate_fn = 0;
};

/// One guarded command, pre-compiled (guard + all alternatives).
struct CompiledCommand {
    expr::Program guard;
    std::vector<CompiledAlternative> alternatives;
    std::uint32_t guard_fn = 0;
};

/// One label predicate, pre-compiled.
struct CompiledLabel {
    std::string name;
    expr::Program program;
    std::uint32_t fn = 0;
};

/// One reward item (guard ? rate contribution), pre-compiled.
struct CompiledRewardItem {
    expr::Program guard;
    expr::Program rate;
    std::uint32_t guard_fn = 0;
    std::uint32_t rate_fn = 0;
};

/// Commands of one action across the participating modules (one inner vector
/// per module that owns commands with this action).
struct SyncGroup {
    std::string action;
    std::vector<std::vector<const Command*>> per_module;
    /// Parallel to per_module; filled when eval != Interp.
    std::vector<std::vector<CompiledCommand>> compiled;
};

/// Immutable exploration context shared by all worker threads.
struct ExploreContext {
    const ModuleSystem& system;
    std::vector<VarDecl> vars;
    std::unordered_map<std::string, std::size_t> var_index;
    std::vector<bool> is_bool;
    std::vector<const Command*> interleaved;
    std::vector<SyncGroup> sync_groups;
    expr::EvalMode eval = expr::EvalMode::Vm;
    expr::SlotMap slot_map;
    /// Parallel to interleaved; filled when eval != Interp.
    std::vector<CompiledCommand> compiled_interleaved;
    /// Labels/rewards, pre-compiled with the commands (eval != Interp) so
    /// they join the model's single native unit under Codegen.
    std::vector<CompiledLabel> labels;
    std::vector<std::vector<CompiledRewardItem>> rewards;
    /// The model's generated-code unit (Codegen only; nullptr after a
    /// graceful fallback, in which case eval was downgraded to Vm).
    std::shared_ptr<const expr::NativeUnit> native;
};

/// Unpacks a state valuation into VM slot values (bool-aware, like the
/// StateEnv lookup), so every program of one state shares the conversion.
void fill_slots(std::span<const std::int64_t> state, const std::vector<bool>& is_bool,
                std::vector<expr::Value>& slots) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
        slots[i] = is_bool[i] ? expr::Value(state[i] != 0)
                              : expr::Value(static_cast<long long>(state[i]));
    }
}

expr::SlotMap make_slot_map(const ModuleSystem& system,
                            const std::unordered_map<std::string, std::size_t>& var_index) {
    expr::SlotMap map;
    map.constants = &system.constants;
    map.slots.reserve(var_index.size());
    for (const auto& [name, index] : var_index) {
        map.slots.emplace(name, static_cast<std::uint32_t>(index));
    }
    return map;
}

CompiledCommand compile_command(const Command& cmd, const ExploreContext& ctx) {
    CompiledCommand out;
    out.guard = expr::compile(cmd.guard, ctx.slot_map);
    out.alternatives.reserve(cmd.alternatives.size());
    for (const auto& alt : cmd.alternatives) {
        CompiledAlternative ca;
        ca.rate = expr::compile(alt.rate, ctx.slot_map);
        ca.assignments.reserve(alt.assignments.size());
        for (const auto& asg : alt.assignments) {
            const auto it = ctx.var_index.find(asg.variable);
            if (it == ctx.var_index.end()) {
                throw ModelError("assignment to unknown variable '" + asg.variable + "'");
            }
            ca.assignments.push_back(
                CompiledAssignment{it->second, expr::compile(asg.value, ctx.slot_map)});
        }
        out.alternatives.push_back(std::move(ca));
    }
    return out;
}

/// Walks every compiled program in deterministic order, assigning each its
/// index inside the model's native unit and collecting the pointers for
/// build_native_unit.  Must run after the compiled vectors are final (the
/// registry holds addresses into them).
std::vector<const expr::Program*> assign_native_indices(ExploreContext& ctx) {
    std::vector<const expr::Program*> registry;
    const auto add = [&registry](const expr::Program& p, std::uint32_t& fn) {
        fn = static_cast<std::uint32_t>(registry.size());
        registry.push_back(&p);
    };
    const auto add_command = [&add](CompiledCommand& cmd) {
        add(cmd.guard, cmd.guard_fn);
        for (auto& alt : cmd.alternatives) {
            add(alt.rate, alt.rate_fn);
            for (auto& asg : alt.assignments) add(asg.value, asg.fn);
        }
    };
    for (auto& cmd : ctx.compiled_interleaved) add_command(cmd);
    for (auto& group : ctx.sync_groups) {
        for (auto& cmds : group.compiled) {
            for (auto& cmd : cmds) add_command(cmd);
        }
    }
    for (auto& label : ctx.labels) add(label.program, label.fn);
    for (auto& items : ctx.rewards) {
        for (auto& item : items) {
            add(item.guard, item.guard_fn);
            add(item.rate, item.rate_fn);
        }
    }
    return registry;
}

ExploreContext make_context(const ModuleSystem& system, expr::EvalMode eval) {
    ExploreContext ctx{system, system.all_variables(), {}, {}, {}, {}, eval, {}, {}, {}, {}, {}};
    if (ctx.vars.empty()) throw ModelError("module system has no variables");
    ctx.is_bool.resize(ctx.vars.size(), false);
    for (std::size_t i = 0; i < ctx.vars.size(); ++i) {
        if (!ctx.var_index.emplace(ctx.vars[i].name, i).second) {
            throw ModelError("duplicate variable '" + ctx.vars[i].name + "'");
        }
        ctx.is_bool[i] = ctx.vars[i].type == VarType::Bool;
    }
    ctx.slot_map = make_slot_map(system, ctx.var_index);

    // Group synchronising commands by action.  The hot-path grouping maps
    // are unordered; the resulting groups are sorted by action name so the
    // exploration order (and hence state numbering) is deterministic.
    std::unordered_map<std::string, std::size_t> group_index;
    for (const auto& module : system.modules) {
        std::unordered_map<std::string, std::vector<const Command*>> local;
        std::vector<std::string> local_order;
        for (const auto& cmd : module.commands) {
            if (cmd.action.empty()) {
                ctx.interleaved.push_back(&cmd);
            } else {
                auto [it, inserted] = local.try_emplace(cmd.action);
                if (inserted) local_order.push_back(cmd.action);
                it->second.push_back(&cmd);
            }
        }
        for (const auto& action : local_order) {
            auto [it, inserted] = group_index.try_emplace(action, ctx.sync_groups.size());
            if (inserted) ctx.sync_groups.push_back(SyncGroup{action, {}, {}});
            ctx.sync_groups[it->second].per_module.push_back(std::move(local[action]));
        }
    }
    std::sort(ctx.sync_groups.begin(), ctx.sync_groups.end(),
              [](const SyncGroup& a, const SyncGroup& b) { return a.action < b.action; });

    // Pre-compile every guard/rate/assignment — plus labels and rewards, so
    // Codegen can batch the whole model into one translation unit; the
    // successor loop then runs slot-indexed bytecode (or native code) only.
    if (ctx.eval != expr::EvalMode::Interp) {
        ctx.compiled_interleaved.reserve(ctx.interleaved.size());
        for (const Command* cmd : ctx.interleaved) {
            ctx.compiled_interleaved.push_back(compile_command(*cmd, ctx));
        }
        for (auto& group : ctx.sync_groups) {
            group.compiled.reserve(group.per_module.size());
            for (const auto& cmds : group.per_module) {
                std::vector<CompiledCommand> here;
                here.reserve(cmds.size());
                for (const Command* cmd : cmds) here.push_back(compile_command(*cmd, ctx));
                group.compiled.push_back(std::move(here));
            }
        }
        for (const auto& [name, predicate] : system.labels) {
            ctx.labels.push_back(
                CompiledLabel{name, expr::compile(predicate, ctx.slot_map)});
        }
        for (const auto& decl : system.rewards) {
            std::vector<CompiledRewardItem> items;
            items.reserve(decl.items.size());
            for (const auto& item : decl.items) {
                items.push_back(CompiledRewardItem{expr::compile(item.guard, ctx.slot_map),
                                                   expr::compile(item.rate, ctx.slot_map)});
            }
            ctx.rewards.push_back(std::move(items));
        }
    }
    if (ctx.eval == expr::EvalMode::Codegen) {
        const std::vector<const expr::Program*> registry = assign_native_indices(ctx);
        ctx.native = expr::build_native_unit(registry, ctx.is_bool);
        // No toolchain / no dlopen / failed build: degrade to the bytecode
        // VM (build_native_unit counted the fallback).  The compiled
        // programs are already in place, so nothing else changes.
        if (ctx.native == nullptr) ctx.eval = expr::EvalMode::Vm;
    }
    return ctx;
}

engine::StateLayout make_layout(const std::vector<VarDecl>& vars) {
    std::vector<engine::FieldSpec> fields;
    fields.reserve(vars.size());
    for (const auto& v : vars) fields.push_back(engine::FieldSpec{v.low, v.high});
    return engine::StateLayout(fields);
}

/// Per-thread successor generator over the shared context.  Dispatches per
/// state between the bytecode VM (default), the generated-code unit
/// (Codegen) and the tree interpreter (oracle); all three walk the commands
/// in exactly the same order with bit-identical evaluation semantics, so
/// the emitted transition sequence — and hence the explored chain — is
/// identical bit for bit.
class Worker {
public:
    explicit Worker(const ExploreContext& ctx)
        : ctx_(ctx),
          env_(ctx.system.constants, ctx.var_index, ctx.is_bool),
          slots_(ctx.vars.size()) {}

    template <typename Emit>
    void operator()(std::span<const std::int64_t> current, Emit&& emit) {
        switch (ctx_.eval) {
            case expr::EvalMode::Interp:
                run_interp(current, emit);
                break;
            case expr::EvalMode::Codegen:
                run_compiled(current, emit, NativeEval{*this, current});
                break;
            default:
                fill_slots(current, ctx_.is_bool, slots_);
                run_compiled(current, emit,
                             VmEval{std::span<const expr::Value>(slots_)});
                break;
        }
    }

private:
    /// Evaluates one compiled program against the pre-filled slot values.
    struct VmEval {
        std::span<const expr::Value> slots;
        expr::Value operator()(const expr::Program& p, std::uint32_t /*fn*/) const {
            return p.run(slots);
        }
    };

    /// Evaluates one compiled program through the model's native unit,
    /// straight off the raw packed valuation.  When the native call reports
    /// failure (the evaluation would throw), the paired VM program is re-run
    /// over freshly filled slots so the identical ModelError is raised.
    struct NativeEval {
        Worker& w;
        std::span<const std::int64_t> current;
        expr::Value operator()(const expr::Program& p, std::uint32_t fn) const {
            expr::Value out;
            if (w.ctx_.native->try_run(fn, current, out)) return out;
            fill_slots(current, w.ctx_.is_bool, w.slots_);
            return p.run(w.slots_);
        }
    };

    /// The compiled successor walk, shared by the VM and Codegen paths: the
    /// evaluator is the only difference, so the emitted transition sequence
    /// — and hence the explored chain — is identical bit for bit.
    template <typename Emit, typename Eval>
    void run_compiled(std::span<const std::int64_t> current, Emit&& emit,
                      const Eval& ev) {
        // Interleaved commands.
        for (const CompiledCommand& cmd : ctx_.compiled_interleaved) {
            if (!ev(cmd.guard, cmd.guard_fn).as_bool()) continue;
            for (const auto& alt : cmd.alternatives) {
                const double rate = ev(alt.rate, alt.rate_fn).as_double();
                apply_assignments_compiled(current, {&alt}, ev);
                emit(std::span<const std::int64_t>(target_), rate);
            }
        }

        // Synchronised commands: product over participating modules.
        for (const auto& group : ctx_.sync_groups) {
            enabled_vm_.clear();
            bool blocked = false;
            for (const auto& cmds : group.compiled) {
                std::vector<std::pair<const CompiledAlternative*, double>> here;
                for (const CompiledCommand& cmd : cmds) {
                    if (!ev(cmd.guard, cmd.guard_fn).as_bool()) continue;
                    for (const auto& alt : cmd.alternatives) {
                        here.emplace_back(&alt, ev(alt.rate, alt.rate_fn).as_double());
                    }
                }
                if (here.empty()) {
                    blocked = true;
                    break;
                }
                enabled_vm_.push_back(std::move(here));
            }
            if (blocked || enabled_vm_.empty()) continue;

            // Cartesian product.
            pick_.assign(enabled_vm_.size(), 0);
            while (true) {
                double rate = 1.0;
                alts_vm_.clear();
                for (std::size_t m = 0; m < enabled_vm_.size(); ++m) {
                    alts_vm_.push_back(enabled_vm_[m][pick_[m]].first);
                    rate *= enabled_vm_[m][pick_[m]].second;
                }
                apply_assignments_compiled(current, alts_vm_, ev);
                emit(std::span<const std::int64_t>(target_), rate);

                // advance the odometer
                std::size_t d = 0;
                for (; d < pick_.size(); ++d) {
                    if (++pick_[d] < enabled_vm_[d].size()) break;
                    pick_[d] = 0;
                }
                if (d == pick_.size()) break;
            }
        }
    }

    template <typename Emit>
    void run_interp(std::span<const std::int64_t> current, Emit&& emit) {
        // Interleaved commands.
        for (const Command* cmd : ctx_.interleaved) {
            env_.bind(current);
            if (!cmd->guard.evaluate(env_).as_bool()) continue;
            for (const auto& alt : cmd->alternatives) {
                env_.bind(current);
                const double rate = alt.rate.evaluate(env_).as_double();
                apply_assignments(current, {&alt});
                emit(std::span<const std::int64_t>(target_), rate);
            }
        }

        // Synchronised commands: product over participating modules.
        for (const auto& group : ctx_.sync_groups) {
            enabled_.clear();
            bool blocked = false;
            for (const auto& cmds : group.per_module) {
                std::vector<std::pair<const Alternative*, double>> here;
                for (const Command* cmd : cmds) {
                    env_.bind(current);
                    if (!cmd->guard.evaluate(env_).as_bool()) continue;
                    for (const auto& alt : cmd->alternatives) {
                        env_.bind(current);
                        here.emplace_back(&alt, alt.rate.evaluate(env_).as_double());
                    }
                }
                if (here.empty()) {
                    blocked = true;
                    break;
                }
                enabled_.push_back(std::move(here));
            }
            if (blocked || enabled_.empty()) continue;

            // Cartesian product.
            pick_.assign(enabled_.size(), 0);
            while (true) {
                double rate = 1.0;
                alts_.clear();
                for (std::size_t m = 0; m < enabled_.size(); ++m) {
                    alts_.push_back(enabled_[m][pick_[m]].first);
                    rate *= enabled_[m][pick_[m]].second;
                }
                apply_assignments(current, alts_);
                emit(std::span<const std::int64_t>(target_), rate);

                // advance the odometer
                std::size_t d = 0;
                for (; d < pick_.size(); ++d) {
                    if (++pick_[d] < enabled_[d].size()) break;
                    pick_[d] = 0;
                }
                if (d == pick_.size()) break;
            }
        }
    }

    void store_assignment(std::size_t slot, const expr::Value& v) {
        const std::int64_t raw =
            v.is_bool() ? static_cast<std::int64_t>(v.as_bool()) : v.as_int();
        const auto& decl = ctx_.vars[slot];
        if (raw < decl.low || raw > decl.high) {
            throw ModelError("assignment drives '" + decl.name + "' to " +
                             std::to_string(raw) + ", outside [" + std::to_string(decl.low) +
                             "," + std::to_string(decl.high) + "]");
        }
        target_[slot] = raw;
    }

    template <typename Eval>
    void apply_assignments_compiled(std::span<const std::int64_t> from,
                                    std::span<const CompiledAlternative* const> alts,
                                    const Eval& ev) {
        target_.assign(from.begin(), from.end());
        for (const CompiledAlternative* alt : alts) {
            for (const auto& asg : alt->assignments) {
                store_assignment(asg.slot, ev(asg.value, asg.fn));
            }
        }
    }

    template <typename Eval>
    void apply_assignments_compiled(std::span<const std::int64_t> from,
                                    std::initializer_list<const CompiledAlternative*> alts,
                                    const Eval& ev) {
        apply_assignments_compiled(
            from, std::span<const CompiledAlternative* const>(alts.begin(), alts.size()),
            ev);
    }

    void apply_assignments(std::span<const std::int64_t> from,
                           std::span<const Alternative* const> alts) {
        target_.assign(from.begin(), from.end());
        env_.bind(from);
        for (const Alternative* alt : alts) {
            for (const auto& asg : alt->assignments) {
                const auto it = ctx_.var_index.find(asg.variable);
                if (it == ctx_.var_index.end()) {
                    throw ModelError("assignment to unknown variable '" + asg.variable + "'");
                }
                store_assignment(it->second, asg.value.evaluate(env_));
            }
        }
    }

    void apply_assignments(std::span<const std::int64_t> from,
                           std::initializer_list<const Alternative*> alts) {
        apply_assignments(from, std::span<const Alternative* const>(alts.begin(), alts.size()));
    }

    const ExploreContext& ctx_;
    StateEnv env_;
    std::vector<expr::Value> slots_;
    State target_;
    std::vector<std::vector<std::pair<const Alternative*, double>>> enabled_;
    std::vector<std::vector<std::pair<const CompiledAlternative*, double>>> enabled_vm_;
    std::vector<std::size_t> pick_;
    std::vector<const Alternative*> alts_;
    std::vector<const CompiledAlternative*> alts_vm_;
};

}  // namespace

std::size_t ExploredModel::variable_index(const std::string& name) const {
    for (std::size_t i = 0; i < variable_names.size(); ++i) {
        if (variable_names[i] == name) return i;
    }
    throw ModelError("unknown variable '" + name + "'");
}

std::int64_t ExploredModel::value_of(std::size_t state, const std::string& name) const {
    ARCADE_ASSERT(state < store.size(), "state index out of range");
    return store.value(state, variable_index(name));
}

std::vector<std::int64_t> ExploredModel::valuation(std::size_t state) const {
    std::vector<std::int64_t> out(variable_names.size());
    store.unpack(state, std::span<std::int64_t>(out));
    return out;
}

std::vector<std::vector<std::int64_t>> ExploredModel::states() const {
    std::vector<std::vector<std::int64_t>> out;
    out.reserve(store.size());
    for (std::size_t s = 0; s < store.size(); ++s) out.push_back(valuation(s));
    return out;
}

ExploredModel explore(const ModuleSystem& system, const ExploreOptions& options) {
    const ExploreContext ctx = make_context(system, options.eval);

    State initial(ctx.vars.size());
    for (std::size_t i = 0; i < ctx.vars.size(); ++i) {
        const auto& v = ctx.vars[i];
        if (v.init < v.low || v.init > v.high) {
            throw ModelError("initial value of '" + v.name + "' violates its bounds");
        }
        initial[i] = v.init;
    }

    // On-the-fly symmetry reduction: prove interchangeable module instances
    // and explore the orbit quotient directly (modules/symmetry.hpp).
    engine::StateSymmetry symmetry;
    if (options.symmetry == engine::SymmetryPolicy::Auto) {
        symmetry = analyze_symmetry(system).state_symmetry(system);
    }

    engine::EngineOptions engine_options;
    engine_options.max_states = options.max_states;
    engine_options.threads = options.threads;
    engine_options.symmetry = symmetry.trivial() ? nullptr : &symmetry;
    auto explored = engine::explore_bfs(
        make_layout(ctx.vars), initial, [&ctx] { return Worker(ctx); }, engine_options);
    engine::StateStore store = std::move(explored.store);

    // Build the rate matrix.
    linalg::CsrBuilder builder(store.size(), store.size());
    for (const auto& t : explored.transitions) {
        if (t.target == t.source) continue;  // drop rate self-loops (CTMC no-ops)
        builder.add(t.source, t.target, t.rate);
    }

    std::vector<double> init_dist(store.size(), 0.0);
    init_dist[0] = 1.0;
    ctmc::Ctmc chain(builder.build(), std::move(init_dist));

    ExploredModel out{std::move(chain), {}, std::move(store), {}};
    out.variable_names.reserve(ctx.vars.size());
    for (const auto& v : ctx.vars) out.variable_names.push_back(v.name);

    // Orbit accounting: the full chain is the disjoint union of the orbits
    // of the explored representatives, so its exact state count is the sum
    // of orbit sizes (see engine/symmetry.hpp).
    out.symmetry_full_states = static_cast<double>(out.store.size());
    if (!symmetry.trivial()) {
        const auto t0 = std::chrono::steady_clock::now();
        out.symmetry_reduced = true;
        out.symmetry_full_states = 0.0;
        State orbit_values(ctx.vars.size());
        for (std::size_t s = 0; s < out.store.size(); ++s) {
            out.store.unpack(s, std::span<std::int64_t>(orbit_values));
            out.symmetry_full_states += symmetry.orbit_size(orbit_values);
        }
        out.symmetry_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    }

    // Labels and rewards: one serial sweep over the decoded states, reusing
    // the same compiled programs (or the oracle environment) per state.
    const std::size_t n = out.store.size();
    State values(ctx.vars.size());
    if (ctx.eval != expr::EvalMode::Interp) {
        // Labels/rewards were compiled with the commands (make_context), so
        // under Codegen they evaluate through the same native unit; a failed
        // native call falls back to the paired VM program per state.
        std::vector<expr::Value> slots(ctx.vars.size());
        std::vector<std::vector<bool>> label_bits(ctx.labels.size(),
                                                  std::vector<bool>(n, false));
        std::vector<std::vector<double>> reward_rates(ctx.rewards.size(),
                                                      std::vector<double>(n, 0.0));
        const bool native = ctx.eval == expr::EvalMode::Codegen;
        for (std::size_t s = 0; s < n; ++s) {
            out.store.unpack(s, std::span<std::int64_t>(values));
            if (!native) fill_slots(values, ctx.is_bool, slots);
            const auto eval_prog = [&](const expr::Program& p, std::uint32_t fn) {
                if (native) {
                    expr::Value v;
                    if (ctx.native->try_run(fn, values, v)) return v;
                    fill_slots(values, ctx.is_bool, slots);
                }
                return p.run(std::span<const expr::Value>(slots));
            };
            for (std::size_t l = 0; l < ctx.labels.size(); ++l) {
                label_bits[l][s] = eval_prog(ctx.labels[l].program, ctx.labels[l].fn).as_bool();
            }
            for (std::size_t r = 0; r < ctx.rewards.size(); ++r) {
                double rate = 0.0;
                for (const auto& item : ctx.rewards[r]) {
                    if (eval_prog(item.guard, item.guard_fn).as_bool()) {
                        rate += eval_prog(item.rate, item.rate_fn).as_double();
                    }
                }
                reward_rates[r][s] = rate;
            }
        }
        for (std::size_t l = 0; l < ctx.labels.size(); ++l) {
            out.chain.set_label(ctx.labels[l].name, std::move(label_bits[l]));
        }
        for (std::size_t r = 0; r < ctx.rewards.size(); ++r) {
            out.reward_structures.emplace(
                system.rewards[r].name,
                rewards::RewardStructure(system.rewards[r].name,
                                         std::move(reward_rates[r])));
        }
    } else {
        StateEnv env(system.constants, ctx.var_index, ctx.is_bool);
        for (const auto& [name, predicate] : system.labels) {
            std::vector<bool> bits(n, false);
            for (std::size_t s = 0; s < n; ++s) {
                out.store.unpack(s, std::span<std::int64_t>(values));
                env.bind(values);
                bits[s] = predicate.evaluate(env).as_bool();
            }
            out.chain.set_label(name, std::move(bits));
        }
        for (const auto& decl : system.rewards) {
            std::vector<double> rates(n, 0.0);
            for (std::size_t s = 0; s < n; ++s) {
                out.store.unpack(s, std::span<std::int64_t>(values));
                env.bind(values);
                double r = 0.0;
                for (const auto& item : decl.items) {
                    if (item.guard.evaluate(env).as_bool()) {
                        r += item.rate.evaluate(env).as_double();
                    }
                }
                rates[s] = r;
            }
            out.reward_structures.emplace(decl.name,
                                          rewards::RewardStructure(decl.name, std::move(rates)));
        }
    }
    return out;
}

std::vector<bool> evaluate_state_predicate(const ExploredModel& model,
                                           const ModuleSystem& system,
                                           const expr::Expr& predicate,
                                           expr::EvalMode eval) {
    std::unordered_map<std::string, std::size_t> var_index;
    for (std::size_t i = 0; i < model.variable_names.size(); ++i) {
        var_index.emplace(model.variable_names[i], i);
    }
    const auto vars = system.all_variables();
    std::vector<bool> is_bool(model.variable_names.size(), false);
    for (const auto& v : vars) {
        const auto it = var_index.find(v.name);
        if (it != var_index.end()) is_bool[it->second] = v.type == VarType::Bool;
    }
    std::vector<bool> bits(model.store.size(), false);
    State values(model.variable_names.size());
    if (eval != expr::EvalMode::Interp) {
        const expr::SlotMap slot_map = make_slot_map(system, var_index);
        const expr::Program program = expr::compile(predicate, slot_map);
        // Single-program native unit; identical predicate texts share one
        // cached .so.  nullptr (no toolchain) degrades to the VM.
        std::shared_ptr<const expr::NativeUnit> native;
        if (eval == expr::EvalMode::Codegen) {
            const expr::Program* ptr = &program;
            native = expr::build_native_unit(std::span<const expr::Program* const>(&ptr, 1),
                                             is_bool);
        }
        std::vector<expr::Value> slots(model.variable_names.size());
        for (std::size_t s = 0; s < model.store.size(); ++s) {
            model.store.unpack(s, std::span<std::int64_t>(values));
            if (native != nullptr) {
                expr::Value v;
                if (native->try_run(0, values, v)) {
                    bits[s] = v.as_bool();
                    continue;
                }
            }
            fill_slots(values, is_bool, slots);
            bits[s] = program.run(slots).as_bool();
        }
        return bits;
    }
    StateEnv env(system.constants, var_index, is_bool);
    for (std::size_t s = 0; s < model.store.size(); ++s) {
        model.store.unpack(s, std::span<std::int64_t>(values));
        env.bind(values);
        bits[s] = predicate.evaluate(env).as_bool();
    }
    return bits;
}

}  // namespace arcade::modules
