#include "modules/symmetry.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "support/errors.hpp"

namespace arcade::modules {

namespace {

using Rename = std::unordered_map<std::string, std::string>;

const std::string& renamed(const std::string& name, const Rename& rename) {
    const auto it = rename.find(name);
    return it == rename.end() ? name : it->second;
}

/// Normalised serialisation of an expression under a variable renaming.
/// Chains of the same commutative-associative operator are flattened and
/// their operand forms sorted, and the symmetric comparisons (=, !=) sort
/// their two sides — so expressions that differ only by the order of
/// symmetric operands serialise identically.  Everything else serialises
/// structurally, so two equal forms denote semantically identical
/// expressions (the comparison is sound, never merely heuristic).
std::string normal_form(const expr::Expr& e, const Rename& rename);

bool commutative_associative(expr::BinaryOp op) {
    switch (op) {
        case expr::BinaryOp::Add:
        case expr::BinaryOp::Mul:
        case expr::BinaryOp::And:
        case expr::BinaryOp::Or:
        case expr::BinaryOp::Min:
        case expr::BinaryOp::Max:
            return true;
        default:
            return false;
    }
}

bool commutative_only(expr::BinaryOp op) {
    return op == expr::BinaryOp::Eq || op == expr::BinaryOp::Ne ||
           op == expr::BinaryOp::Iff;
}

/// Collects the operands of a maximal same-op chain of a
/// commutative-associative operator.
void flatten_chain(const expr::Expr& e, expr::BinaryOp op, const Rename& rename,
                   std::vector<std::string>& out) {
    if (const auto* bin = std::get_if<expr::Binary>(&e.node()); bin != nullptr &&
                                                               bin->op == op) {
        flatten_chain(bin->lhs, op, rename, out);
        flatten_chain(bin->rhs, op, rename, out);
        return;
    }
    out.push_back(normal_form(e, rename));
}

std::string op_tag(expr::BinaryOp op) {
    return "b" + std::to_string(static_cast<int>(op));
}

std::string normal_form(const expr::Expr& e, const Rename& rename) {
    if (e.empty()) return "()";
    return std::visit(
        [&](const auto& node) -> std::string {
            using T = std::decay_t<decltype(node)>;
            if constexpr (std::is_same_v<T, expr::Literal>) {
                return "l:" + node.value.to_string();
            } else if constexpr (std::is_same_v<T, expr::Identifier>) {
                return "v:" + renamed(node.name, rename);
            } else if constexpr (std::is_same_v<T, expr::Unary>) {
                return "u" + std::to_string(static_cast<int>(node.op)) + "(" +
                       normal_form(node.operand, rename) + ")";
            } else if constexpr (std::is_same_v<T, expr::Binary>) {
                if (commutative_associative(node.op)) {
                    std::vector<std::string> parts;
                    flatten_chain(e, node.op, rename, parts);
                    std::sort(parts.begin(), parts.end());
                    std::string out = op_tag(node.op) + "{";
                    for (const auto& p : parts) out += p + ";";
                    return out + "}";
                }
                std::string lhs = normal_form(node.lhs, rename);
                std::string rhs = normal_form(node.rhs, rename);
                if (commutative_only(node.op) && rhs < lhs) std::swap(lhs, rhs);
                return op_tag(node.op) + "(" + lhs + "," + rhs + ")";
            } else {
                static_assert(std::is_same_v<T, expr::Ite>);
                return "ite(" + normal_form(node.cond, rename) + "," +
                       normal_form(node.then_branch, rename) + "," +
                       normal_form(node.else_branch, rename) + ")";
            }
        },
        e.node());
}

/// Normalised form of one command (action + guard + alternatives with
/// renamed assignment targets).  Alternatives and assignments keep their
/// order: reordering them is already semantically irrelevant for the
/// comparison we make (multisets of whole commands).
std::string command_form(const Command& cmd, const Rename& rename) {
    std::string out = "[" + cmd.action + "]" + normal_form(cmd.guard, rename);
    for (const auto& alt : cmd.alternatives) {
        out += "->" + normal_form(alt.rate, rename) + ":";
        for (const auto& asg : alt.assignments) {
            out += renamed(asg.variable, rename) + "=" +
                   normal_form(asg.value, rename) + "&";
        }
    }
    return out;
}

/// Sorted multiset of a module's command forms — module semantics up to
/// command order (interleaved commands fire independently, synchronised
/// ones are grouped by the action name embedded in each form).
std::string module_form(const Module& module, const Rename& rename) {
    std::vector<std::string> forms;
    forms.reserve(module.commands.size());
    for (const auto& cmd : module.commands) forms.push_back(command_form(cmd, rename));
    std::sort(forms.begin(), forms.end());
    std::string out;
    for (const auto& f : forms) out += f + "\n";
    return out;
}

/// Whole-system normal form under `rename` — equal forms under two
/// renamings mean the renaming is a system automorphism.  Module command
/// multisets are concatenated sorted (interleaving is order-free and a
/// swap moves commands between the two renamed modules); labels and
/// rewards keep their names and declaration structure.
std::string system_form(const ModuleSystem& system, const Rename& rename) {
    std::vector<std::string> module_forms;
    module_forms.reserve(system.modules.size());
    for (const auto& module : system.modules) {
        module_forms.push_back(module_form(module, rename));
    }
    std::sort(module_forms.begin(), module_forms.end());
    std::string out = "modules:";
    for (const auto& f : module_forms) out += f + "\x1f";
    out += "labels:";
    for (const auto& [name, predicate] : system.labels) {  // std::map: sorted
        out += name + "=" + normal_form(predicate, rename) + "\x1f";
    }
    out += "rewards:";
    for (const auto& decl : system.rewards) {
        out += decl.name + "{";
        std::vector<std::string> items;
        items.reserve(decl.items.size());
        for (const auto& item : decl.items) {
            items.push_back(normal_form(item.guard, rename) + "->" +
                            normal_form(item.rate, rename));
        }
        std::sort(items.begin(), items.end());
        for (const auto& i : items) out += i + ";";
        out += "}\x1f";
    }
    return out;
}

/// Template key of a candidate module: structure with own variable k
/// renamed to a positional placeholder.  Non-candidates (synchronising
/// commands, references to foreign variables) return the empty string.
std::string template_key(const ModuleSystem& system, const Module& module) {
    Rename rename;
    std::unordered_set<std::string> own;
    std::string key;
    for (std::size_t i = 0; i < module.variables.size(); ++i) {
        const auto& v = module.variables[i];
        rename.emplace(v.name, "@" + std::to_string(i));
        own.insert(v.name);
        key += "var[" + std::to_string(static_cast<int>(v.type)) + "," +
               std::to_string(v.low) + "," + std::to_string(v.high) + "," +
               std::to_string(v.init) + "]";
    }
    if (module.variables.empty()) return {};  // stateless: nothing to permute
    const auto own_or_constant = [&](const expr::Expr& e) {
        for (const auto& name : e.free_variables()) {
            if (own.count(name) == 0 && system.constants.count(name) == 0) return false;
        }
        return true;
    };
    for (const auto& cmd : module.commands) {
        if (!cmd.action.empty()) return {};  // synchronisation: out of fragment
        if (!own_or_constant(cmd.guard)) return {};
        for (const auto& alt : cmd.alternatives) {
            if (!own_or_constant(alt.rate)) return {};
            for (const auto& asg : alt.assignments) {
                if (own.count(asg.variable) == 0) return {};
                if (!own_or_constant(asg.value)) return {};
            }
        }
    }
    key += module_form(module, rename);
    return key;
}

}  // namespace

SymmetryAnalysis analyze_symmetry(const ModuleSystem& system) {
    SymmetryAnalysis analysis;
    // Group candidates by template, preserving module order.
    std::map<std::string, std::vector<std::size_t>> by_template;
    for (std::size_t m = 0; m < system.modules.size(); ++m) {
        const std::string key = template_key(system, system.modules[m]);
        if (!key.empty()) by_template[key].push_back(m);
    }
    const std::string identity_form = system_form(system, Rename{});
    for (auto& [key, members] : by_template) {
        if (members.size() < 2) continue;
        // Verify every adjacent transposition is a system automorphism;
        // adjacent transpositions generate the full symmetric group on the
        // members, so this proves invariance under every permutation.
        bool invariant = true;
        for (std::size_t i = 0; i + 1 < members.size() && invariant; ++i) {
            const auto& a = system.modules[members[i]].variables;
            const auto& b = system.modules[members[i + 1]].variables;
            Rename swap_rename;
            for (std::size_t k = 0; k < a.size(); ++k) {
                swap_rename.emplace(a[k].name, b[k].name);
                swap_rename.emplace(b[k].name, a[k].name);
            }
            invariant = system_form(system, swap_rename) == identity_form;
        }
        if (invariant) analysis.orbits.push_back(ModuleOrbit{std::move(members)});
    }
    std::sort(analysis.orbits.begin(), analysis.orbits.end(),
              [](const ModuleOrbit& a, const ModuleOrbit& b) {
                  return a.modules.front() < b.modules.front();
              });
    return analysis;
}

engine::StateSymmetry SymmetryAnalysis::state_symmetry(const ModuleSystem& system) const {
    // Field offset of each module's first variable in the flattened
    // (all_variables) order: modules in order, variables contiguous.
    std::vector<std::size_t> offset(system.modules.size(), 0);
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < system.modules.size(); ++m) {
        offset[m] = cursor;
        cursor += system.modules[m].variables.size();
    }
    std::vector<engine::SymmetryOrbit> engine_orbits;
    engine_orbits.reserve(orbits.size());
    for (const auto& orbit : orbits) {
        engine::SymmetryOrbit eo;
        for (const std::size_t m : orbit.modules) {
            ARCADE_ASSERT(m < system.modules.size(), "orbit module out of range");
            std::vector<std::size_t> fields(system.modules[m].variables.size());
            for (std::size_t k = 0; k < fields.size(); ++k) fields[k] = offset[m] + k;
            eo.instances.push_back(std::move(fields));
        }
        engine_orbits.push_back(std::move(eo));
    }
    return engine::StateSymmetry(std::move(engine_orbits));
}

}  // namespace arcade::modules
