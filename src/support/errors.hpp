// Error handling primitives shared by every layer of the library.
//
// The library throws exceptions derived from arcade::Error at its API
// boundaries.  Internal invariants use ARCADE_ASSERT, which is active in
// all build types: a violated invariant in a numerical engine silently
// produces wrong probabilities, which is far worse than an abort.
#ifndef ARCADE_SUPPORT_ERRORS_HPP
#define ARCADE_SUPPORT_ERRORS_HPP

#include <stdexcept>
#include <string>

namespace arcade {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller supplied an argument that violates a documented precondition.
class InvalidArgument : public Error {
public:
    explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A textual input (expression, PRISM model, XML, CSL formula) failed to parse.
class ParseError : public Error {
public:
    ParseError(const std::string& what, std::size_t line, std::size_t column)
        : Error(what + " (line " + std::to_string(line) + ", column " +
                std::to_string(column) + ")"),
          line_(line),
          column_(column) {}

    explicit ParseError(const std::string& what) : Error(what), line_(0), column_(0) {}

    [[nodiscard]] std::size_t line() const noexcept { return line_; }
    [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
    std::size_t line_;
    std::size_t column_;
};

/// An iterative numerical method failed to converge within its budget.
class ConvergenceError : public Error {
public:
    explicit ConvergenceError(const std::string& what) : Error(what) {}
};

/// A model is structurally unsuitable for the requested analysis
/// (e.g. steady state of an empty chain, reward query without rewards).
class ModelError : public Error {
public:
    explicit ModelError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& message);
}  // namespace detail

}  // namespace arcade

/// Always-on invariant check.  `msg` may use std::string concatenation.
#define ARCADE_ASSERT(expr, msg)                                              \
    do {                                                                      \
        if (!(expr)) {                                                        \
            ::arcade::detail::assertion_failed(#expr, __FILE__, __LINE__,    \
                                               (msg));                        \
        }                                                                     \
    } while (false)

#endif  // ARCADE_SUPPORT_ERRORS_HPP
