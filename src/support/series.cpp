#include "support/series.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace arcade {

void Figure::add_series(std::string name, std::vector<double> values) {
    ARCADE_ASSERT(values.size() == times_.size(),
                  "series '" + name + "' length " + std::to_string(values.size()) +
                      " != time grid length " + std::to_string(times_.size()));
    series_.push_back(Series{std::move(name), std::move(values)});
}

void Figure::print(std::ostream& os) const {
    // The precision applies to this figure's rows only, not to whatever the
    // caller prints next (elapsed seconds, session stats).
    const std::ios::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    os << "# " << title_ << "\n";
    os << "# x: " << x_label_ << "   y: " << y_label_ << "\n";
    os << "# t";
    for (const auto& s : series_) os << "\t" << s.name;
    os << "\n";
    os << std::setprecision(7);
    for (std::size_t i = 0; i < times_.size(); ++i) {
        os << times_[i];
        for (const auto& s : series_) os << "\t" << s.values[i];
        os << "\n";
    }
    os.flags(flags);
    os.precision(precision);
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
    ARCADE_ASSERT(cells.size() == header_.size(), "table row arity mismatch");
    rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
    const std::ios::fmtflags flags = os.flags();
    const std::streamsize precision = os.precision();
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
        }
        os << "\n";
    };
    emit(header_);
    std::vector<std::string> rule;
    rule.reserve(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) rule.emplace_back(std::string(width[c], '-'));
    emit(rule);
    for (const auto& row : rows_) emit(row);
    os.flags(flags);
    os.precision(precision);
}

std::vector<double> time_grid(double max, std::size_t points) {
    ARCADE_ASSERT(points >= 2, "time grid needs at least two points");
    std::vector<double> out(points);
    for (std::size_t i = 0; i < points; ++i) {
        out[i] = max * static_cast<double>(i) / static_cast<double>(points - 1);
    }
    return out;
}

}  // namespace arcade
