// Output helpers for the benchmark harnesses: aligned ASCII tables and
// gnuplot-ready (t, value...) series, the formats the paper's figures use.
#ifndef ARCADE_SUPPORT_SERIES_HPP
#define ARCADE_SUPPORT_SERIES_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace arcade {

/// A named time series: one curve of a figure.
struct Series {
    std::string name;
    std::vector<double> values;
};

/// A figure: common abscissa (time points) plus one or more curves.
/// print() emits a gnuplot-compatible block with a header comment.
class Figure {
public:
    Figure(std::string title, std::string x_label, std::string y_label)
        : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)) {}

    void set_times(std::vector<double> times) { times_ = std::move(times); }
    void add_series(std::string name, std::vector<double> values);

    [[nodiscard]] const std::vector<double>& times() const noexcept { return times_; }
    [[nodiscard]] const std::vector<Series>& series() const noexcept { return series_; }

    /// Writes `# title` header, `# t <name1> <name2>...` then one row per time.
    void print(std::ostream& os) const;

private:
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<double> times_;
    std::vector<Series> series_;
};

/// Simple aligned-column table printer for the paper's tables.
class Table {
public:
    explicit Table(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);
    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Uniformly spaced grid {0, step, ..., max} inclusive of both ends.
[[nodiscard]] std::vector<double> time_grid(double max, std::size_t points);

}  // namespace arcade

#endif  // ARCADE_SUPPORT_SERIES_HPP
