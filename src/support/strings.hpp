// Small string utilities used by the parsers and writers.
#ifndef ARCADE_SUPPORT_STRINGS_HPP
#define ARCADE_SUPPORT_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace arcade {

/// Splits `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True iff `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Renders a double with enough digits to round-trip, trimming trailing zeros.
[[nodiscard]] std::string format_double(double value);

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string_view text);

}  // namespace arcade

#endif  // ARCADE_SUPPORT_STRINGS_HPP
