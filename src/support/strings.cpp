#include "support/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace arcade {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t b = 0;
    std::size_t e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])) != 0) --e;
    return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string format_double(double value) {
    char buf[64];
    // %.17g round-trips but is noisy; try increasing precision until exact.
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, value);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == value) break;
    }
    return buf;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

}  // namespace arcade
