#include "support/errors.hpp"

#include <cstdlib>
#include <iostream>

namespace arcade::detail {

[[noreturn]] void assertion_failed(const char* expr, const char* file, int line,
                                   const std::string& message) {
    std::cerr << "ARCADE_ASSERT failed: " << expr << "\n  at " << file << ":"
              << line << "\n  " << message << std::endl;
    std::abort();
}

}  // namespace arcade::detail
