// Serialises a ModuleSystem to PRISM language text.  Together with the
// parser this gives a round-trip (export -> parse -> explore) used both as
// an integration test and as an interoperability escape hatch: models built
// with the Arcade API can be exported and checked with the real PRISM tool.
#ifndef ARCADE_PRISM_PRISM_WRITER_HPP
#define ARCADE_PRISM_PRISM_WRITER_HPP

#include <string>

#include "modules/modules.hpp"

namespace arcade::prism {

/// Renders `system` as a PRISM CTMC model.
[[nodiscard]] std::string write_prism(const modules::ModuleSystem& system);

}  // namespace arcade::prism

#endif  // ARCADE_PRISM_PRISM_WRITER_HPP
