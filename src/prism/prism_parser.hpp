// Parser for the PRISM-language subset the Arcade translation targets:
//
//   ctmc
//   const int N = 3;  const double lambda = 1/500;
//   formula busy = s1=2 | s2=2;
//   module pump1
//     s1 : [0..2] init 0;
//     b1 : bool init false;
//     [] s1=0 -> lambda : (s1'=1);
//     [fix] s1=1 -> mu : (s1'=0) + mu2 : (s1'=2);
//   endmodule
//   label "down" = s1=1 & s2=1;
//   rewards "repair_cost"
//     s1=1 : 3;
//   endrewards
//
// Formulas are substituted syntactically, as in PRISM.  Comments: // ... \n.
#ifndef ARCADE_PRISM_PRISM_PARSER_HPP
#define ARCADE_PRISM_PRISM_PARSER_HPP

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "modules/modules.hpp"

namespace arcade::prism {

/// Side information the parser can report about the source (feeds lint
/// checks that need source-level facts the ModuleSystem no longer carries,
/// e.g. AR010 — formulas are substituted away during parsing).
struct PrismParseInfo {
    /// Formulas that no constant, guard, rate, assignment, bound, label or
    /// reward references (directly, or through another referenced formula):
    /// name + byte offset of the defining body in the source.
    std::vector<std::pair<std::string, std::size_t>> unused_formulas;
};

/// Parses PRISM source text into a module system.  Throws arcade::ParseError
/// with line information on malformed input.  Every parsed expression is
/// stamped with its byte offset in `source` (see expr::Expr::offset), so
/// lint diagnostics can point into the file.  `info`, when given, receives
/// the side facts described above.
[[nodiscard]] modules::ModuleSystem parse_prism(const std::string& source,
                                                PrismParseInfo* info = nullptr);

}  // namespace arcade::prism

#endif  // ARCADE_PRISM_PRISM_PARSER_HPP
