#include "prism/prism_parser.hpp"

#include <cctype>
#include <map>
#include <set>

#include "support/errors.hpp"
#include "support/strings.hpp"

namespace arcade::prism {

namespace {

/// Line-oriented scanner with comment stripping and simple token helpers.
class Scanner {
public:
    explicit Scanner(const std::string& source) : src_(source) {}

    [[nodiscard]] bool at_end() {
        skip_ws();
        return i_ >= src_.size();
    }

    [[nodiscard]] std::size_t line() const noexcept { return line_; }

    /// Peeks the next word without consuming.
    [[nodiscard]] std::string peek_word() {
        const std::size_t save_i = i_;
        const std::size_t save_line = line_;
        std::string w = word();
        i_ = save_i;
        line_ = save_line;
        return w;
    }

    /// Consumes an identifier-like word.
    std::string word() {
        skip_ws();
        std::size_t j = i_;
        while (j < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[j])) != 0 || src_[j] == '_')) {
            ++j;
        }
        if (j == i_) fail("expected a word");
        std::string w = src_.substr(i_, j - i_);
        i_ = j;
        return w;
    }

    /// Consumes exactly `text` (after whitespace) or fails.
    void expect(const std::string& text) {
        skip_ws();
        if (src_.compare(i_, text.size(), text) != 0) {
            fail("expected '" + text + "'");
        }
        advance(text.size());
    }

    /// Consumes `text` if present.
    bool accept(const std::string& text) {
        skip_ws();
        if (src_.compare(i_, text.size(), text) == 0) {
            // keywords must not swallow identifier prefixes
            if (std::isalpha(static_cast<unsigned char>(text[0])) != 0) {
                const std::size_t after = i_ + text.size();
                if (after < src_.size() &&
                    (std::isalnum(static_cast<unsigned char>(src_[after])) != 0 ||
                     src_[after] == '_')) {
                    return false;
                }
            }
            advance(text.size());
            return true;
        }
        return false;
    }

    /// Reads raw text up to (not including) the delimiter character,
    /// balancing parentheses so that e.g. ';' inside parens is skipped.
    /// Byte offset where the most recent until()/until_arrow() slice began
    /// — the base offset expression parsing stamps its nodes with.
    [[nodiscard]] std::size_t last_offset() const noexcept { return last_offset_; }

    std::string until(char delim) {
        skip_ws();
        last_offset_ = i_;
        std::size_t depth = 0;
        std::size_t j = i_;
        while (j < src_.size()) {
            const char c = src_[j];
            if (c == '(') {
                ++depth;
            } else if (c == ')') {
                if (depth == 0) break;
                --depth;
            } else if (depth == 0 && c == delim) {
                break;
            } else if (c == '/' && j + 1 < src_.size() && src_[j + 1] == '/') {
                while (j < src_.size() && src_[j] != '\n') ++j;
                continue;
            }
            ++j;
        }
        std::string out = src_.substr(i_, j - i_);
        advance(j - i_);
        return std::string(trim(out));
    }

    /// Reads raw text up to (not including) the token "->" at paren depth 0.
    /// Needed for guards, where a bare '-' may be a subtraction.
    std::string until_arrow() {
        skip_ws();
        last_offset_ = i_;
        std::size_t depth = 0;
        std::size_t j = i_;
        while (j < src_.size()) {
            const char c = src_[j];
            if (c == '(') ++depth;
            if (c == ')' && depth > 0) --depth;
            if (depth == 0 && c == '-' && j + 1 < src_.size() && src_[j + 1] == '>') break;
            if (c == '/' && j + 1 < src_.size() && src_[j + 1] == '/') {
                while (j < src_.size() && src_[j] != '\n') ++j;
                continue;
            }
            ++j;
        }
        std::string out = src_.substr(i_, j - i_);
        advance(j - i_);
        return std::string(trim(out));
    }

    /// Reads a quoted string "...".
    std::string quoted() {
        expect("\"");
        std::size_t j = i_;
        while (j < src_.size() && src_[j] != '"') ++j;
        if (j >= src_.size()) fail("unterminated string");
        std::string out = src_.substr(i_, j - i_);
        advance(j - i_ + 1);
        return out;
    }

    [[noreturn]] void fail(const std::string& message) {
        throw ParseError(message, line_, 1);
    }

private:
    const std::string& src_;
    std::size_t i_ = 0;
    std::size_t line_ = 1;
    std::size_t last_offset_ = 0;

    void advance(std::size_t n) {
        for (std::size_t k = 0; k < n && i_ < src_.size(); ++k, ++i_) {
            if (src_[i_] == '\n') ++line_;
        }
    }

    void skip_ws() {
        while (i_ < src_.size()) {
            const char c = src_[i_];
            if (c == '/' && i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
                while (i_ < src_.size() && src_[i_] != '\n') ++i_;
            } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                advance(1);
            } else {
                break;
            }
        }
    }
};

/// Substitutes formula identifiers by their bodies (recursively), recording
/// which formulas were hit.  Rebuilt nodes keep the original's source
/// offset; substituted bodies keep the offsets of their defining text.
expr::Expr substitute(const expr::Expr& e, const std::map<std::string, expr::Expr>& formulas,
                      std::set<std::string>& used) {
    using namespace expr;
    if (e.empty()) return e;
    const auto& n = e.node();
    if (const auto* id = std::get_if<Identifier>(&n)) {
        const auto it = formulas.find(id->name);
        if (it != formulas.end()) {
            used.insert(id->name);
            return substitute(it->second, formulas, used);
        }
        return e;
    }
    if (std::get_if<Literal>(&n) != nullptr) return e;
    if (const auto* u = std::get_if<Unary>(&n)) {
        return Expr::unary(u->op, substitute(u->operand, formulas, used))
            .with_offset(e.offset());
    }
    if (const auto* b = std::get_if<Binary>(&n)) {
        return Expr::binary(b->op, substitute(b->lhs, formulas, used),
                            substitute(b->rhs, formulas, used))
            .with_offset(e.offset());
    }
    const auto& ite_node = std::get<Ite>(n);
    return Expr::ite(substitute(ite_node.cond, formulas, used),
                     substitute(ite_node.then_branch, formulas, used),
                     substitute(ite_node.else_branch, formulas, used))
        .with_offset(e.offset());
}

/// Evaluates a constant expression against already-known constants.
class ConstEnv final : public expr::Environment {
public:
    explicit ConstEnv(const std::map<std::string, expr::Value>& constants)
        : constants_(constants) {}
    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = constants_.find(name);
        if (it == constants_.end()) {
            throw ModelError("unknown constant '" + name + "'");
        }
        return it->second;
    }

private:
    const std::map<std::string, expr::Value>& constants_;
};

}  // namespace

modules::ModuleSystem parse_prism(const std::string& source, PrismParseInfo* info) {
    Scanner sc(source);
    modules::ModuleSystem system;
    std::map<std::string, expr::Expr> formulas;
    std::map<std::string, std::size_t> formula_offsets;
    std::map<std::string, std::vector<std::string>> formula_refs;
    std::set<std::string> used_formulas;
    ConstEnv const_env(system.constants);

    if (!sc.accept("ctmc")) {
        sc.fail("model must start with 'ctmc' (only CTMC mode is supported)");
    }

    auto parse_expr_text = [&](const std::string& text) {
        return substitute(expr::parse_expression(text, sc.last_offset()), formulas,
                          used_formulas);
    };

    while (!sc.at_end()) {
        const std::string kw = sc.peek_word();
        if (kw == "const") {
            sc.word();
            std::string type = sc.peek_word();
            bool is_double = false;
            bool is_bool = false;
            if (type == "double" || type == "int" || type == "bool") {
                sc.word();
                is_double = type == "double";
                is_bool = type == "bool";
            }
            const std::string name = sc.word();
            sc.expect("=");
            const std::string body = sc.until(';');
            sc.expect(";");
            const expr::Value v = parse_expr_text(body).evaluate(const_env);
            if (is_double) {
                system.constants.emplace(name, expr::Value(v.as_double()));
            } else if (is_bool) {
                system.constants.emplace(name, expr::Value(v.as_bool()));
            } else {
                system.constants.emplace(name, v);
            }
        } else if (kw == "formula") {
            sc.word();
            const std::string name = sc.word();
            sc.expect("=");
            const std::string body = sc.until(';');
            const std::size_t body_offset = sc.last_offset();
            sc.expect(";");
            // References between formulas are resolved at definition time
            // (bodies are stored fully substituted), so record the raw
            // dependency edges here — usage tracking closes over them.
            const expr::Expr raw = expr::parse_expression(body, body_offset);
            std::vector<std::string>& refs = formula_refs[name];
            for (const auto& ref : raw.free_variables()) {
                if (formulas.contains(ref)) refs.push_back(ref);
            }
            formula_offsets.emplace(name, body_offset);
            std::set<std::string> definition_uses;  // not real uses
            formulas.emplace(name, substitute(raw, formulas, definition_uses));
        } else if (kw == "module") {
            sc.word();
            modules::Module module;
            module.name = sc.word();
            while (!sc.accept("endmodule")) {
                if (sc.accept("[")) {
                    // command
                    modules::Command cmd;
                    if (!sc.accept("]")) {
                        cmd.action = sc.word();
                        sc.expect("]");
                    }
                    const std::string guard_text = sc.until_arrow();
                    sc.expect("->");
                    cmd.guard = parse_expr_text(guard_text);
                    // alternatives separated by '+': rate : updates
                    while (true) {
                        modules::Alternative alt;
                        const std::string rate_text = sc.until(':');
                        sc.expect(":");
                        alt.rate = parse_expr_text(rate_text);
                        // updates: (x'=e) & (y'=f)  or the keyword true
                        if (sc.accept("true")) {
                            // no assignments
                        } else {
                            while (true) {
                                sc.expect("(");
                                const std::string var = sc.word();
                                sc.expect("'");
                                sc.expect("=");
                                const std::string val_text = sc.until(')');
                                sc.expect(")");
                                alt.assignments.push_back(
                                    modules::Assignment{var, parse_expr_text(val_text)});
                                if (!sc.accept("&")) break;
                            }
                        }
                        cmd.alternatives.push_back(std::move(alt));
                        if (sc.accept("+")) continue;
                        sc.expect(";");
                        break;
                    }
                    module.commands.push_back(std::move(cmd));
                } else {
                    // variable declaration: name : [lo..hi] init e;  |  name : bool init e;
                    modules::VarDecl var;
                    var.name = sc.word();
                    sc.expect(":");
                    if (sc.accept("bool")) {
                        var.type = modules::VarType::Bool;
                        var.low = 0;
                        var.high = 1;
                    } else {
                        sc.expect("[");
                        const std::string lo = sc.until('.');
                        sc.expect("..");
                        const std::string hi = sc.until(']');
                        sc.expect("]");
                        var.type = modules::VarType::Int;
                        var.low = parse_expr_text(lo).evaluate(const_env).as_int();
                        var.high = parse_expr_text(hi).evaluate(const_env).as_int();
                    }
                    if (sc.accept("init")) {
                        const std::string init_text = sc.until(';');
                        const expr::Value v = parse_expr_text(init_text).evaluate(const_env);
                        var.init = v.is_bool() ? static_cast<long long>(v.as_bool()) : v.as_int();
                    } else {
                        var.init = var.low;
                    }
                    sc.expect(";");
                    module.variables.push_back(std::move(var));
                }
            }
            system.modules.push_back(std::move(module));
        } else if (kw == "label") {
            sc.word();
            const std::string name = sc.quoted();
            sc.expect("=");
            const std::string body = sc.until(';');
            sc.expect(";");
            system.labels.emplace(name, parse_expr_text(body));
        } else if (kw == "rewards") {
            sc.word();
            modules::RewardDecl decl;
            decl.name = sc.quoted();
            while (!sc.accept("endrewards")) {
                modules::RewardItem item;
                const std::string guard_text = sc.until(':');
                sc.expect(":");
                item.guard = parse_expr_text(guard_text);
                const std::string rate_text = sc.until(';');
                sc.expect(";");
                item.rate = parse_expr_text(rate_text);
                decl.items.push_back(std::move(item));
            }
            system.rewards.push_back(std::move(decl));
        } else {
            sc.fail("unexpected keyword '" + kw + "'");
        }
    }
    if (info != nullptr) {
        // A formula is used when a real expression substituted it, or when a
        // used formula's definition referenced it (transitively).
        std::vector<std::string> work(used_formulas.begin(), used_formulas.end());
        while (!work.empty()) {
            const auto it = formula_refs.find(work.back());
            work.pop_back();
            if (it == formula_refs.end()) continue;
            for (const auto& ref : it->second) {
                if (used_formulas.insert(ref).second) work.push_back(ref);
            }
        }
        for (const auto& [name, offset] : formula_offsets) {
            if (!used_formulas.contains(name)) {
                info->unused_formulas.emplace_back(name, offset);
            }
        }
    }
    return system;
}

}  // namespace arcade::prism
