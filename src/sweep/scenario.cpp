#include "sweep/scenario.hpp"

#include <cstdint>
#include <cstring>
#include <unordered_set>
#include <variant>

#include "logic/csl.hpp"
#include "support/errors.hpp"

namespace arcade::sweep {

namespace {

/// Exact textual identity of a double (bit pattern): dedup keys must not
/// merge distinct service levels or grids that round to the same decimals.
std::string bits_string(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return std::to_string(bits);
}

std::string times_key(const std::vector<double>& times) {
    std::uint64_t h = 1469598103934665603ull;
    for (const double t : times) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &t, sizeof bits);
        h ^= bits;
        h *= 1099511628211ull;
    }
    return std::to_string(times.size()) + ":" + std::to_string(h);
}

}  // namespace

std::string to_string(MeasureKind kind) {
    switch (kind) {
        case MeasureKind::Availability: return "availability";
        case MeasureKind::SteadyStateCost: return "steady-state-cost";
        case MeasureKind::StateSpace: return "state-space";
        case MeasureKind::Reliability: return "reliability";
        case MeasureKind::Survivability: return "survivability";
        case MeasureKind::InstantaneousCost: return "instantaneous-cost";
        case MeasureKind::AccumulatedCost: return "accumulated-cost";
        case MeasureKind::Property: return "property";
    }
    throw InvalidArgument("unknown MeasureKind");
}

std::string to_string(DisasterKind kind) {
    switch (kind) {
        case DisasterKind::None: return "none";
        case DisasterKind::AllPumps: return "disaster1";
        case DisasterKind::Mixed: return "disaster2";
    }
    throw InvalidArgument("unknown DisasterKind");
}

ModelVariant lumped_variant() { return {"lumped", core::Encoding::Lumped, true}; }

ModelVariant individual_variant() {
    return {"individual", core::Encoding::Individual, true};
}

std::string WorkItem::model_key() const {
    std::string key = "line" + std::to_string(line) + "/" + strategy + "/p" +
                      std::to_string(parameter_index) + "/" +
                      (variant.encoding == core::Encoding::Lumped ? "lumped" : "individual");
    // Reliability strips the repair units (a repair-free property likewise),
    // so such cells compile their own model even when another measure shares
    // the (line, strategy, variant, parameters) cell; a repair-free variant
    // describes the same model.
    if (!variant.repair || measure.kind == MeasureKind::Reliability ||
        (measure.kind == MeasureKind::Property && measure.strip_repair)) {
        key += "/norepair";
    }
    // The scale changes the compiled model; the default scale adds nothing so
    // unscaled grids keep their pre-scale keys (and cache identities).
    if (scale.extra_pumps > 0) key += "/+" + std::to_string(scale.extra_pumps) + "p";
    return key;
}

std::string WorkItem::key() const {
    std::string key = model_key() + "/v=" + variant.name + "/" +
                      to_string(measure.kind) + "/" + to_string(measure.disaster);
    if (!scale.is_default()) key += "/sc=" + scale.name;
    if (measure.kind == MeasureKind::Survivability) {
        key += "/x=" + bits_string(measure.service_level);
    }
    if (measure.kind == MeasureKind::Property) key += "/f=" + measure.property;
    if (measure.is_series()) key += "/t=" + times_key(measure.times);
    return key;
}

namespace {

/// Eager validation of a property measure: the formula must parse, its
/// thresholds must be well-formed (logic::validate throws InvalidArgument),
/// and a time grid demands a time-bounded quantitative top level — all
/// caught here, not mid-run on a worker thread.
void validate_property(const MeasureSpec& measure) {
    if (measure.property.empty()) {
        throw InvalidArgument("ScenarioGrid: a property measure needs a CSL formula");
    }
    logic::StateFormulaPtr formula;
    try {
        formula = logic::parse_csl(measure.property);
    } catch (const ParseError& e) {
        throw InvalidArgument(std::string("ScenarioGrid: malformed property formula: ") +
                              e.what());
    }
    logic::validate(*formula);
    if (measure.is_series()) {
        const logic::StateFormula* top = formula.get();
        if (const auto* neg = std::get_if<logic::Negation>(&top->node())) {
            top = neg->operand.get();
        }
        const bool time_parametric = [&] {
            if (const auto* prob = std::get_if<logic::Probabilistic>(&top->node())) {
                const auto* until = std::get_if<logic::UntilPath>(&prob->path);
                return prob->bound.comparison == logic::Comparison::Query &&
                       until != nullptr && until->time_bound.has_value();
            }
            if (const auto* reward = std::get_if<logic::Reward>(&top->node())) {
                return reward->bound.comparison == logic::Comparison::Query &&
                       !std::holds_alternative<logic::SteadyStateReward>(reward->property);
            }
            return false;
        }();
        if (!time_parametric) {
            throw InvalidArgument(
                "ScenarioGrid: a property with a time grid must be a time-bounded "
                "quantitative query (P=? [ phi U<=t psi ], R=? [ I=t ], R=? [ C<=t ], "
                "optionally negated): " +
                measure.property);
        }
    } else if (measure.disaster != DisasterKind::None) {
        throw InvalidArgument(
            "ScenarioGrid: a scalar property evaluates the formula as written from the "
            "model's own initial state; it cannot take a disaster");
    }
    if (measure.strip_repair && measure.disaster != DisasterKind::None) {
        throw InvalidArgument(
            "ScenarioGrid: a repair-free property starts from the all-up state; it "
            "cannot take a disaster");
    }
}

/// Throws on malformed measures; returns false for cells the cross-product
/// prunes (a disaster undefined for the line).
bool validate(int line, const MeasureSpec& measure) {
    if (line != 1 && line != 2) {
        throw InvalidArgument("ScenarioGrid: line number must be 1 or 2, got " +
                              std::to_string(line));
    }
    if (measure.kind == MeasureKind::Reliability &&
        measure.disaster != DisasterKind::None) {
        throw InvalidArgument(
            "ScenarioGrid: reliability starts from the all-up state; it cannot take a "
            "disaster");
    }
    if (measure.kind == MeasureKind::StateSpace &&
        measure.disaster != DisasterKind::None) {
        throw InvalidArgument(
            "ScenarioGrid: state-space is a property of the model, not of a disaster");
    }
    if (measure.kind == MeasureKind::Property) {
        validate_property(measure);
    } else if (!measure.property.empty() || measure.strip_repair) {
        throw InvalidArgument(
            "ScenarioGrid: formula text and strip_repair apply to property measures "
            "only");
    }
    if (measure.is_series()) {
        if (measure.times.empty()) {
            throw InvalidArgument("ScenarioGrid: series measure " +
                                  to_string(measure.kind) + " needs a time grid");
        }
        for (std::size_t i = 0; i < measure.times.size(); ++i) {
            if (measure.times[i] < 0.0 ||
                (i > 0 && measure.times[i] < measure.times[i - 1])) {
                throw InvalidArgument("ScenarioGrid: time grid must be ascending and "
                                      "non-negative");
            }
        }
    }
    // Disaster 2 is defined on Line 2 only (paper Section 5): the cell is
    // pruned, not an error, so one spec can cover both lines.
    return !(measure.disaster == DisasterKind::Mixed && line != 2);
}

}  // namespace

std::vector<WorkItem> expand(const ScenarioGrid& grid) {
    // An empty dimension would make the whole sweep a silent no-op; every
    // axis of the cross-product must be populated.
    if (grid.lines.empty()) throw InvalidArgument("ScenarioGrid: no lines");
    if (grid.strategies.empty()) throw InvalidArgument("ScenarioGrid: no strategies");
    if (grid.measures.empty()) throw InvalidArgument("ScenarioGrid: no measures");
    if (grid.parameters.empty()) {
        throw InvalidArgument("ScenarioGrid: at least one parameter set is required");
    }
    if (grid.variants.empty()) {
        throw InvalidArgument("ScenarioGrid: at least one model variant is required");
    }
    if (grid.scales.empty()) {
        throw InvalidArgument("ScenarioGrid: at least one component scale is required");
    }
    std::vector<WorkItem> items;
    std::unordered_set<std::string> seen;
    for (const int line : grid.lines) {
        for (const auto& name : grid.strategies) {
            (void)watertree::strategy(name);  // throws on unknown names, eagerly
            for (const auto& variant : grid.variants) {
                for (std::size_t p = 0; p < grid.parameters.size(); ++p) {
                    for (const auto& scale : grid.scales) {
                        for (const auto& measure : grid.measures) {
                            if (!validate(line, measure)) continue;
                            WorkItem item{line, name, variant, p,
                                          measure, items.size(), scale};
                            if (!item.measure.is_series()) item.measure.times.clear();
                            if (seen.insert(item.key()).second) {
                                items.push_back(std::move(item));
                            }
                        }
                    }
                }
            }
        }
    }
    return items;
}

ShardSpec ShardSpec::parse(const std::string& text) {
    // Strict digits/digits only: stoul's prefix parsing would turn a typo
    // like "1/3o" into shard 1/3 and silently duplicate work across a
    // mis-specified fleet.
    const auto parse_number = [&](const std::string& part) {
        if (part.empty() || part.size() > 9 ||
            part.find_first_not_of("0123456789") != std::string::npos) {
            throw InvalidArgument("ShardSpec: expected 'i/n' (e.g. '2/3'), got '" + text +
                                  "'");
        }
        return static_cast<std::size_t>(std::stoul(part));
    };
    const std::size_t slash = text.find('/');
    if (slash == std::string::npos) {
        throw InvalidArgument("ShardSpec: expected 'i/n' (e.g. '2/3'), got '" + text +
                              "'");
    }
    const std::size_t index = parse_number(text.substr(0, slash));
    const std::size_t count = parse_number(text.substr(slash + 1));
    if (count == 0 || index == 0 || index > count) {
        throw InvalidArgument("ShardSpec: shard index must satisfy 1 <= i <= n, got '" +
                              text + "'");
    }
    return ShardSpec{index, count};
}

std::vector<WorkItem> shard_slice(const std::vector<WorkItem>& items,
                                  const ShardSpec& shard) {
    if (shard.count == 0 || shard.index == 0 || shard.index > shard.count) {
        throw InvalidArgument("shard_slice: shard index must satisfy 1 <= i <= n, got " +
                              std::to_string(shard.index) + "/" +
                              std::to_string(shard.count));
    }
    const std::size_t n = items.size();
    const std::size_t lo = (shard.index - 1) * n / shard.count;
    const std::size_t hi = shard.index * n / shard.count;
    return std::vector<WorkItem>(items.begin() + static_cast<std::ptrdiff_t>(lo),
                                 items.begin() + static_cast<std::ptrdiff_t>(hi));
}

}  // namespace arcade::sweep
