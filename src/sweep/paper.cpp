#include "sweep/paper.hpp"

#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "arcade/measures.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"
#include "watertree/properties.hpp"

namespace arcade::sweep::paper {

namespace {

constexpr double kX1 = 1.0 / 3.0;
constexpr double kX2 = 2.0 / 3.0;  // line 2's X3 is the same service level

/// A grid over one set of strategies with a single measure (the shape of
/// every figure).
ScenarioGrid figure_grid(std::vector<int> lines, std::vector<std::string> strategies,
                         MeasureSpec measure) {
    ScenarioGrid grid;
    grid.lines = std::move(lines);
    grid.strategies = std::move(strategies);
    grid.measures = {std::move(measure)};
    return grid;
}

/// Renders a figure whose curves are the report's results in grid order,
/// one per strategy (or per line for fig 3).
void render_series_figure(const SweepReport& report, const std::string& title,
                          const std::string& x_label, const std::string& y_label,
                          bool name_by_line, std::ostream& os) {
    if (report.results.empty()) {
        throw InvalidArgument("render: empty sweep report for '" + title + "'");
    }
    Figure fig(title, x_label, y_label);
    fig.set_times(report.results.front().item.measure.times);
    for (const auto& r : report.results) {
        fig.add_series(name_by_line ? "Reliability_line" + std::to_string(r.item.line)
                                    : r.item.strategy,
                       r.values);
    }
    fig.print(os);
}

}  // namespace

const ScenarioResult& find_or_throw(const SweepReport& report, int line,
                                    const std::string& strategy, MeasureKind kind,
                                    DisasterKind disaster, double service_level,
                                    const std::string& variant,
                                    std::size_t parameter_index) {
    const auto* r = find(report, line, strategy, kind, disaster, service_level, variant,
                         parameter_index);
    if (r == nullptr) {
        throw InvalidArgument(
            "render: missing " + to_string(kind) + " cell for line " +
            std::to_string(line) + ", strategy " + strategy +
            (variant.empty() ? std::string() : ", variant " + variant) +
            (parameter_index > 0
                 ? ", parameter set " + std::to_string(parameter_index)
                 : std::string()));
    }
    return *r;
}

std::vector<std::string> strategy_names() {
    std::vector<std::string> names;
    for (const auto& s : watertree::paper_strategies()) names.push_back(s.name);
    return names;
}

const ScenarioResult* find(const SweepReport& report, int line,
                           const std::string& strategy, MeasureKind kind,
                           DisasterKind disaster, double service_level,
                           const std::string& variant, std::size_t parameter_index) {
    for (const auto& r : report.results) {
        const auto& m = r.item.measure;
        if (r.item.line == line && r.item.strategy == strategy && m.kind == kind &&
            m.disaster == disaster && m.service_level == service_level &&
            r.item.parameter_index == parameter_index &&
            (variant.empty() || r.item.variant.name == variant)) {
            return &r;
        }
    }
    return nullptr;
}

ScenarioGrid fig3() {
    return figure_grid({1, 2}, {"DED"},  // strategy irrelevant without repair
                       {MeasureKind::Reliability, DisasterKind::None, 1.0,
                        time_grid(1000.0, 101)});
}

ScenarioGrid fig4() {
    return figure_grid({1}, {"DED", "FRF-1", "FRF-2"},
                       {MeasureKind::Survivability, DisasterKind::AllPumps, kX1,
                        time_grid(4.5, 91)});
}

ScenarioGrid fig5() {
    return figure_grid({1}, {"DED", "FRF-1", "FRF-2"},
                       {MeasureKind::Survivability, DisasterKind::AllPumps, kX2,
                        time_grid(4.5, 91)});
}

ScenarioGrid fig6() {
    return figure_grid({1}, {"DED", "FRF-1", "FRF-2"},
                       {MeasureKind::InstantaneousCost, DisasterKind::AllPumps, 1.0,
                        time_grid(4.5, 91)});
}

ScenarioGrid fig7() {
    return figure_grid({1}, {"DED", "FRF-1", "FRF-2"},
                       {MeasureKind::AccumulatedCost, DisasterKind::AllPumps, 1.0,
                        time_grid(10.0, 101)});
}

ScenarioGrid fig8() {
    return figure_grid({2}, {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                       {MeasureKind::Survivability, DisasterKind::Mixed, kX1,
                        time_grid(100.0, 101)});
}

ScenarioGrid fig9() {
    return figure_grid({2}, {"DED", "FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                       {MeasureKind::Survivability, DisasterKind::Mixed, kX2,
                        time_grid(100.0, 101)});
}

ScenarioGrid fig10() {
    return figure_grid({2}, {"FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                       {MeasureKind::InstantaneousCost, DisasterKind::Mixed, 1.0,
                        time_grid(50.0, 101)});
}

ScenarioGrid fig11() {
    return figure_grid({2}, {"FFF-1", "FFF-2", "FRF-1", "FRF-2"},
                       {MeasureKind::AccumulatedCost, DisasterKind::Mixed, 1.0,
                        time_grid(50.0, 101)});
}

ScenarioGrid table1() {
    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = strategy_names();
    // The paper's (individual) encoding next to the lumped comparison.
    grid.variants = {individual_variant(), lumped_variant()};
    grid.measures = {{MeasureKind::StateSpace, DisasterKind::None, 1.0, {}}};
    return grid;
}

ScenarioGrid table2() {
    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = strategy_names();
    grid.measures = {{MeasureKind::Availability, DisasterKind::None, 1.0, {}}};
    return grid;
}

ScenarioGrid everything() {
    const auto short_grid = time_grid(4.5, 91);    // Figs 4–6
    const auto cost_grid = time_grid(10.0, 101);   // Fig 7
    const auto long_grid = time_grid(100.0, 101);  // Figs 8–9

    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = strategy_names();
    grid.measures = {
        {MeasureKind::Availability, DisasterKind::None, 1.0, {}},              // Table 2
        {MeasureKind::Survivability, DisasterKind::AllPumps, kX1, short_grid},  // Fig 4
        {MeasureKind::Survivability, DisasterKind::AllPumps, kX2, short_grid},  // Fig 5
        {MeasureKind::InstantaneousCost, DisasterKind::AllPumps, 1.0, short_grid},  // Fig 6
        {MeasureKind::AccumulatedCost, DisasterKind::AllPumps, 1.0, cost_grid},     // Fig 7
        {MeasureKind::Survivability, DisasterKind::Mixed, kX1, long_grid},     // Fig 8
        {MeasureKind::Survivability, DisasterKind::Mixed, kX2, long_grid},     // Fig 9
    };
    return grid;
}

ScenarioGrid properties() {
    const auto short_grid = time_grid(4.5, 91);    // Figs 4–6
    const auto cost_grid = time_grid(10.0, 101);   // Fig 7
    const auto long_grid = time_grid(100.0, 101);  // Figs 8–9
    constexpr double kInstCostTime = 4.5;    // Fig 6 horizon
    constexpr double kAccCostHorizon = 10.0;  // Fig 7 horizon

    namespace wp = watertree::properties;
    const auto property = [](std::string formula, DisasterKind disaster,
                             std::vector<double> times) {
        MeasureSpec m;
        m.kind = MeasureKind::Property;
        m.disaster = disaster;
        m.times = std::move(times);
        m.property = std::move(formula);
        return m;
    };

    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = strategy_names();
    grid.measures = {
        property(wp::availability_formula(), DisasterKind::None, {}),  // Table 2
        property(wp::survivability_formula(kX1, 4.5), DisasterKind::AllPumps,
                 short_grid),  // Fig 4
        property(wp::survivability_formula(kX2, 4.5), DisasterKind::AllPumps,
                 short_grid),  // Fig 5
        property(wp::instantaneous_cost_formula(kInstCostTime), DisasterKind::AllPumps,
                 short_grid),  // Fig 6
        property(wp::accumulated_cost_formula(kAccCostHorizon), DisasterKind::AllPumps,
                 cost_grid),  // Fig 7
        property(wp::survivability_formula(kX1, 100.0), DisasterKind::Mixed,
                 long_grid),  // Fig 8
        property(wp::survivability_formula(kX2, 100.0), DisasterKind::Mixed,
                 long_grid),  // Fig 9
    };
    return grid;
}

const ScenarioResult* find_property(const SweepReport& report, int line,
                                    const std::string& strategy,
                                    const std::string& formula) {
    for (const auto& r : report.results) {
        if (r.item.line == line && r.item.strategy == strategy &&
            r.item.measure.kind == MeasureKind::Property &&
            r.item.measure.property == formula) {
            return &r;
        }
    }
    return nullptr;
}

void render_properties(const SweepReport& report, const ScenarioGrid& grid,
                       std::ostream& os) {
    namespace wp = watertree::properties;
    os << "=== Property sweep: the paper's measures as CSL/CSRL formulas ===\n\n";

    const std::string availability = wp::availability_formula();
    Table table({"Strategy", "Line 1", "Line 2", "Formula"});
    char buf[64];
    for (const auto& name : grid.strategies) {
        const auto* a1 = find_property(report, 1, name, availability);
        const auto* a2 = find_property(report, 2, name, availability);
        if (a1 == nullptr || a2 == nullptr) {
            throw InvalidArgument("render: missing availability property cell for " +
                                  name);
        }
        std::vector<std::string> cells{name};
        std::snprintf(buf, sizeof buf, "%.7f", a1->values.front());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f", a2->values.front());
        cells.emplace_back(buf);
        cells.push_back(availability);
        table.add_row(std::move(cells));
    }
    table.print(os);

    os << "\n";
    const std::string survivability = wp::survivability_formula(kX1, 100.0);
    Figure fig("Survivability as " + survivability + " (Line 2, Disaster 2)",
               "t in hours", "Probability (S)");
    bool have_times = false;
    for (const auto& name : grid.strategies) {
        const auto* r = find_property(report, 2, name, survivability);
        if (r == nullptr) {
            throw InvalidArgument("render: missing survivability property cell for " +
                                  name);
        }
        if (!have_times) {
            fig.set_times(r->item.measure.times);
            have_times = true;
        }
        fig.add_series(name, r->values);
    }
    fig.print(os);
}

void render_fig3(const SweepReport& report, std::ostream& os) {
    render_series_figure(report, "Figure 3: reliability over time", "t in hours",
                         "Probability (S)", /*name_by_line=*/true, os);
}

void render_fig4(const SweepReport& report, std::ostream& os) {
    render_series_figure(report,
                         "Figure 4: survivability Line 1, Disaster 1, X1 (service >= 1/3)",
                         "t in hours", "Probability (S)", false, os);
}

void render_fig5(const SweepReport& report, std::ostream& os) {
    render_series_figure(report,
                         "Figure 5: survivability Line 1, Disaster 1, X2 (service >= 2/3)",
                         "t in hours", "Probability (S)", false, os);
}

void render_fig6(const SweepReport& report, std::ostream& os) {
    render_series_figure(report, "Figure 6: instantaneous cost Line 1, Disaster 1",
                         "t in hours", "Impuls Costs (I)", false, os);
}

void render_fig7(const SweepReport& report, std::ostream& os) {
    render_series_figure(report, "Figure 7: accumulated cost Line 1, Disaster 1",
                         "t in hours", "Cumulative costs (I)", false, os);
}

void render_fig8(const SweepReport& report, std::ostream& os) {
    render_series_figure(report,
                         "Figure 8: survivability Line 2, Disaster 2, X1 (service >= 1/3)",
                         "t in hours", "Probability (S)", false, os);
}

void render_fig9(const SweepReport& report, std::ostream& os) {
    render_series_figure(report,
                         "Figure 9: survivability Line 2, Disaster 2, X3 (service >= 2/3)",
                         "t in hours", "Probability (S)", false, os);
}

void render_fig10(const SweepReport& report, std::ostream& os) {
    render_series_figure(report, "Figure 10: instantaneous cost Line 2, Disaster 2",
                         "t in hours", "Impuls costs (I)", false, os);
}

void render_fig11(const SweepReport& report, std::ostream& os) {
    render_series_figure(report, "Figure 11: accumulated cost Line 2, Disaster 2",
                         "t in hours", "Cumulative costs (I)", false, os);
}

void render_table1(const SweepReport& report, std::ostream& os) {
    os << "=== Table 1: state space for repair strategies ===\n";
    os << "(paper values in parentheses; states must match exactly;\n"
          " FRF/FFF transition counts are PRISM-encoding artifacts in the\n"
          " paper — our encoding is policy-independent, see DESIGN.md)\n\n";

    struct PaperRow {
        const char* name;
        std::size_t s1, t1, s2, t2;
    };
    const PaperRow paper[] = {
        {"DED", 2048, 22528, 512, 4606},
        {"FRF-1", 111809, 388478, 8129, 25838},
        {"FRF-2", 111809, 500275, 8129, 33957},
        {"FFF-1", 111809, 367106, 8129, 23354},
        {"FFF-2", 111809, 478903, 8129, 31473},
    };

    Table table({"Strategy", "L1 states", "L1 trans.", "L2 states", "L2 trans.",
                 "L1 lumped", "L2 lumped"});
    for (const auto& row : paper) {
        const auto& l1 =
            find_or_throw(report, 1, row.name, MeasureKind::StateSpace,
                          DisasterKind::None, 1.0, "individual");
        const auto& l2 =
            find_or_throw(report, 2, row.name, MeasureKind::StateSpace,
                          DisasterKind::None, 1.0, "individual");
        const auto& l1_lumped =
            find_or_throw(report, 1, row.name, MeasureKind::StateSpace,
                          DisasterKind::None, 1.0, "lumped");
        const auto& l2_lumped =
            find_or_throw(report, 2, row.name, MeasureKind::StateSpace,
                          DisasterKind::None, 1.0, "lumped");
        table.add_row({row.name,
                       std::to_string(l1.model_states) + " (" + std::to_string(row.s1) + ")",
                       std::to_string(l1.model_transitions) + " (" + std::to_string(row.t1) +
                           ")",
                       std::to_string(l2.model_states) + " (" + std::to_string(row.s2) + ")",
                       std::to_string(l2.model_transitions) + " (" + std::to_string(row.t2) +
                           ")",
                       std::to_string(l1_lumped.model_states),
                       std::to_string(l2_lumped.model_states)});
    }
    table.print(os);
}

void render_table2(const SweepReport& report, std::ostream& os) {
    os << "=== Table 2: availability for repair strategies ===\n";
    os << "(paper values in parentheses; DED matches to 1e-7, two-crew\n"
          " rows to ~1e-4; the paper's one-crew digits carry solver noise —\n"
          " its own FFF-2 line-2 exceeds DED, which is semantically\n"
          " impossible.  See EXPERIMENTS.md.)\n\n";

    struct PaperRow {
        const char* name;
        double line1, line2, combined;
    };
    const PaperRow paper[] = {
        {"DED", 0.7442018, 0.8186317, 0.9536063},
        {"FRF-1", 0.7225597, 0.8101931, 0.9473399},
        {"FRF-2", 0.7439214, 0.8186312, 0.9535554},
        {"FFF-1", 0.7273540, 0.8120302, 0.9487508},
        {"FFF-2", 0.7440022, 0.8186662, 0.9535790},
    };

    Table table({"Strategy", "Line 1 (paper)", "Line 2 (paper)", "Combined (paper)"});
    char buf[128];
    for (const auto& row : paper) {
        const double a1 =
            find_or_throw(report, 1, row.name, MeasureKind::Availability).values.front();
        const double a2 =
            find_or_throw(report, 2, row.name, MeasureKind::Availability).values.front();
        const double combined = core::combined_availability(a1, a2);
        std::vector<std::string> cells;
        cells.emplace_back(row.name);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a1, row.line1);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", a2, row.line2);
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f (%.7f)", combined, row.combined);
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(os);
}

}  // namespace arcade::sweep::paper
