#include "sweep/export.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace arcade::sweep {

namespace {

/// Shortest round-trip-exact decimal form of a double.
std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/// Does the grid carry CSL property measures?  Decides (from the grid, not
/// the result slice, so every shard of one sweep agrees) whether the CSV
/// grows its trailing `property` column.
bool has_property(const ScenarioGrid& grid) {
    for (const auto& m : grid.measures) {
        if (m.kind == MeasureKind::Property) return true;
    }
    return false;
}

/// Does the grid sweep component scales?  Like has_property, decided from
/// the grid so every shard agrees; unscaled grids keep the original schema
/// byte for byte.
bool has_scale(const ScenarioGrid& grid) {
    for (const auto& s : grid.scales) {
        if (!s.is_default()) return true;
    }
    return false;
}

}  // namespace

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::string csv_field(const std::string& s) {
    if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void write_csv(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os,
               const CsvOptions& options) {
    // Grids without property measures keep the original 9-column schema;
    // property grids append a trailing `property` column carrying the
    // formula, so rows stay self-describing (two formulas in one grid are
    // otherwise indistinguishable).
    const bool property_column = has_property(grid);
    const bool scale_column = has_scale(grid);
    if (options.header) {
        os << "line,strategy,parameters,variant,measure,disaster,service_level,t,value";
        if (property_column) os << ",property";
        if (scale_column) os << ",scale";
        os << "\n";
    }
    for (const auto& r : report.results) {
        const auto& m = r.item.measure;
        const std::string prefix =
            std::to_string(r.item.line) + "," + csv_field(r.item.strategy) + "," +
            csv_field(grid.parameters[r.item.parameter_index].name) + "," +
            csv_field(r.item.variant.name) + "," +
            to_string(m.kind) + "," +
            to_string(m.disaster) + "," +
            (m.kind == MeasureKind::Survivability ? fmt(m.service_level) : "") + ",";
        std::string suffix =
            property_column ? "," + csv_field(m.property) : std::string();
        if (scale_column) suffix += "," + csv_field(r.item.scale.name);
        if (m.is_series()) {
            for (std::size_t i = 0; i < r.values.size(); ++i) {
                os << prefix << fmt(m.times[i]) << "," << fmt(r.values[i]) << suffix
                   << "\n";
            }
        } else {
            os << prefix << "," << fmt(r.values.front()) << suffix << "\n";
        }
    }
    if (options.footer) {
        os << "# scenarios=" << report.results.size() << " unique_models="
           << report.unique_models << " compile_hits=" << report.stats.compile_hits
           << " compile_misses=" << report.stats.compile_misses
           << " steady_hits=" << report.stats.steady_state_hits
           << " steady_misses=" << report.stats.steady_state_misses
           << " cache_hit_rate=" << fmt(report.cache_hit_rate())
           << " lump_hits=" << report.stats.lump_hits
           << " lump_misses=" << report.stats.lump_misses
           << " property_hits=" << report.stats.property_hits
           << " property_misses=" << report.stats.property_misses
           << " reduction_ratio=" << fmt(report.stats.reduction_ratio())
           << " symmetry_states_in=" << report.stats.symmetry_states_in
           << " symmetry_states_out=" << report.stats.symmetry_states_out
           << " symmetry_ratio=" << fmt(report.stats.symmetry_ratio())
           << " symmetry_seconds=" << fmt(report.stats.symmetry_seconds)
           << " lint_warnings=" << report.stats.lint_warnings
           << " lint_errors=" << report.stats.lint_errors
           << " codegen_builds=" << report.stats.codegen_builds
           << " codegen_cache_hits=" << report.stats.codegen_cache_hits
           << " codegen_fallbacks=" << report.stats.codegen_fallbacks
           << " batch_cells_fused=" << report.stats.batch_cells_fused
           << " batch_columns=" << report.stats.batch_columns
           << " batch_seconds=" << fmt(report.stats.batch_seconds)
           << " state_points=" << report.state_points
           << " states_per_sec=" << fmt(report.states_per_second())
           << " wall_seconds=" << fmt(report.wall_seconds) << "\n";
    }
}

void write_json(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os) {
    os << "{\n  \"counters\": {\n"
       << "    \"scenarios\": " << report.results.size() << ",\n"
       << "    \"unique_models\": " << report.unique_models << ",\n"
       << "    \"compile_hits\": " << report.stats.compile_hits << ",\n"
       << "    \"compile_misses\": " << report.stats.compile_misses << ",\n"
       << "    \"steady_state_hits\": " << report.stats.steady_state_hits << ",\n"
       << "    \"steady_state_misses\": " << report.stats.steady_state_misses << ",\n"
       << "    \"cache_hit_rate\": " << fmt(report.cache_hit_rate()) << ",\n"
       << "    \"lump_hits\": " << report.stats.lump_hits << ",\n"
       << "    \"lump_misses\": " << report.stats.lump_misses << ",\n"
       << "    \"lump_states_in\": " << report.stats.lump_states_in << ",\n"
       << "    \"lump_states_out\": " << report.stats.lump_states_out << ",\n"
       << "    \"property_hits\": " << report.stats.property_hits << ",\n"
       << "    \"property_misses\": " << report.stats.property_misses << ",\n"
       << "    \"reduction_ratio\": " << fmt(report.stats.reduction_ratio()) << ",\n"
       << "    \"symmetry_states_in\": " << report.stats.symmetry_states_in << ",\n"
       << "    \"symmetry_states_out\": " << report.stats.symmetry_states_out << ",\n"
       << "    \"symmetry_ratio\": " << fmt(report.stats.symmetry_ratio()) << ",\n"
       << "    \"symmetry_seconds\": " << fmt(report.stats.symmetry_seconds) << ",\n"
       << "    \"lint_warnings\": " << report.stats.lint_warnings << ",\n"
       << "    \"lint_errors\": " << report.stats.lint_errors << ",\n"
       << "    \"codegen_builds\": " << report.stats.codegen_builds << ",\n"
       << "    \"codegen_cache_hits\": " << report.stats.codegen_cache_hits << ",\n"
       << "    \"codegen_fallbacks\": " << report.stats.codegen_fallbacks << ",\n"
       << "    \"batch_cells_fused\": " << report.stats.batch_cells_fused << ",\n"
       << "    \"batch_columns\": " << report.stats.batch_columns << ",\n"
       << "    \"batch_seconds\": " << fmt(report.stats.batch_seconds) << ",\n"
       << "    \"state_points\": " << report.state_points << ",\n"
       << "    \"states_per_second\": " << fmt(report.states_per_second()) << ",\n"
       << "    \"wall_seconds\": " << fmt(report.wall_seconds) << "\n  },\n"
       << "  \"results\": [\n";
    const bool scale_field = has_scale(grid);
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const auto& r = report.results[i];
        const auto& m = r.item.measure;
        os << "    {\"index\": " << r.item.index << ", \"line\": " << r.item.line
           << ", \"strategy\": \"" << json_escape(r.item.strategy)
           << "\", \"parameters\": \""
           << json_escape(grid.parameters[r.item.parameter_index].name)
           << "\", \"variant\": \"" << json_escape(r.item.variant.name)
           << "\", \"measure\": \"" << to_string(m.kind) << "\", \"disaster\": \""
           << to_string(m.disaster) << "\", \"service_level\": " << fmt(m.service_level)
           << ", \"formula\": \"" << json_escape(m.property) << "\"";
        if (scale_field) {
            os << ", \"scale\": \"" << json_escape(r.item.scale.name)
               << "\", \"model_full_states\": " << fmt(r.model_full_states);
        }
        os << ", \"model_states\": " << r.model_states
           << ", \"model_transitions\": " << r.model_transitions
           << ", \"seconds\": " << fmt(r.seconds) << ",\n     \"times\": [";
        for (std::size_t k = 0; k < m.times.size(); ++k) {
            os << (k > 0 ? ", " : "") << fmt(m.times[k]);
        }
        os << "], \"values\": [";
        for (std::size_t k = 0; k < r.values.size(); ++k) {
            os << (k > 0 ? ", " : "") << fmt(r.values[k]);
        }
        os << "]}" << (i + 1 < report.results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

}  // namespace arcade::sweep
