// Umbrella header for the scenario-sweep subsystem: declare a grid
// (scenario.hpp), run it (runner.hpp), export the results (export.hpp).
#ifndef ARCADE_SWEEP_SWEEP_HPP
#define ARCADE_SWEEP_SWEEP_HPP

#include "sweep/export.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"

#endif  // ARCADE_SWEEP_SWEEP_HPP
