// Umbrella header for the scenario-sweep subsystem: declare a grid
// (scenario.hpp), run it (runner.hpp), export the results (export.hpp),
// or start from the ready-made specs — the paper's figures/tables
// (paper.hpp) and the beyond-the-paper ablation/sensitivity studies
// (studies.hpp).
#ifndef ARCADE_SWEEP_SWEEP_HPP
#define ARCADE_SWEEP_SWEEP_HPP

#include "sweep/export.hpp"
#include "sweep/paper.hpp"
#include "sweep/runner.hpp"
#include "sweep/scenario.hpp"
#include "sweep/studies.hpp"

#endif  // ARCADE_SWEEP_SWEEP_HPP
