// Result export for scenario sweeps: a flat CSV (one row per solved point,
// gnuplot/pandas-friendly) and a structured JSON document, both carrying
// the run's cache-effectiveness and throughput counters so downstream
// tooling can track engine regressions alongside the numbers.
#ifndef ARCADE_SWEEP_EXPORT_HPP
#define ARCADE_SWEEP_EXPORT_HPP

#include <iosfwd>

#include "sweep/runner.hpp"

namespace arcade::sweep {

/// Header `line,strategy,parameters,measure,disaster,service_level,t,value`;
/// scalar measures emit one row with an empty `t` column.  Doubles are
/// round-trip exact (%.17g).
void write_csv(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os);

/// One JSON object: {"counters": {...}, "results": [{..., "values": [...]}]}.
void write_json(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os);

}  // namespace arcade::sweep

#endif  // ARCADE_SWEEP_EXPORT_HPP
