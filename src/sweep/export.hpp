// Result export for scenario sweeps: a flat CSV (one row per solved point,
// gnuplot/pandas-friendly) and a structured JSON document.  The JSON always
// carries the run's cache-effectiveness and throughput counters so
// downstream tooling can track engine regressions alongside the numbers;
// the CSV stays strict RFC-4180 by default (counters are an opt-in footer
// comment).
#ifndef ARCADE_SWEEP_EXPORT_HPP
#define ARCADE_SWEEP_EXPORT_HPP

#include <iosfwd>
#include <string>

#include "sweep/runner.hpp"

namespace arcade::sweep {

/// RFC-4180 CSV field: quoted (with doubled quotes) when the value holds a
/// separator, quote or newline; the raw string otherwise.
[[nodiscard]] std::string csv_field(const std::string& s);

/// JSON string escaping: quotes, backslashes and control characters (a
/// caller-supplied ParameterSet or ModelVariant name must never corrupt the
/// document).
[[nodiscard]] std::string json_escape(const std::string& s);

struct CsvOptions {
    /// Emit the column-name header line.  Shard 1 of a partitioned sweep
    /// writes it; later shards suppress it so the per-shard files
    /// concatenate into exactly the unsharded document.
    bool header = true;
    /// Emit the trailing `# scenarios=... cache_hit_rate=...` counter
    /// comment.  Off by default: comment lines break strict RFC-4180
    /// parsers (the counters are always present in the JSON export).
    bool footer = false;
};

/// Header `line,strategy,parameters,variant,measure,disaster,service_level,
/// t,value`; scalar measures emit one row with an empty `t` column.  Doubles
/// are round-trip exact (%.17g).  Rows appear in result order, which for
/// runner output is ascending work-item index — so shard CSVs concatenate
/// (shard 1 with header, the rest without) into the unsharded document.
void write_csv(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os,
               const CsvOptions& options = {});

/// One JSON object: {"counters": {...}, "results": [{..., "values": [...]}]}.
/// The counters block is always present.
void write_json(const SweepReport& report, const ScenarioGrid& grid, std::ostream& os);

}  // namespace arcade::sweep

#endif  // ARCADE_SWEEP_EXPORT_HPP
