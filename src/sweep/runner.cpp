#include "sweep/runner.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <numeric>
#include <thread>

#include "arcade/measures.hpp"
#include "ctmc/transient_batch.hpp"
#include "engine/explore.hpp"
#include "logic/csl_compiled.hpp"
#include "support/errors.hpp"

namespace arcade::sweep {

namespace {

double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Per-thread deques with stealing: a worker pops its own newest task
/// (back, cache-warm) and steals the oldest (front) from a victim, the
/// classic Chase–Lev discipline in its simple mutexed form — sweep tasks
/// are milliseconds long, so contention on the per-deque mutex is noise.
class WorkQueues {
public:
    explicit WorkQueues(std::size_t workers) : queues_(workers) {}

    void push(std::size_t owner, std::size_t task) {
        std::lock_guard<std::mutex> lock(queues_[owner].mutex);
        queues_[owner].tasks.push_back(task);
    }

    /// Own-queue pop, then steal scan starting after the caller.  Returns
    /// false only when every deque is empty.
    bool pop(std::size_t self, std::size_t& task) {
        {
            auto& own = queues_[self];
            std::lock_guard<std::mutex> lock(own.mutex);
            if (!own.tasks.empty()) {
                task = own.tasks.back();
                own.tasks.pop_back();
                return true;
            }
        }
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            auto& victim = queues_[(self + i) % queues_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = victim.tasks.front();
                victim.tasks.pop_front();
                return true;
            }
        }
        return false;
    }

private:
    struct Deque {
        std::mutex mutex;
        std::deque<std::size_t> tasks;
    };
    std::vector<Deque> queues_;
};

/// Runs `task(index)` over [0, count) on `workers` threads with stealing.
/// Tasks are dealt round-robin so related neighbours spread out; the first
/// exception wins and is rethrown on the caller's thread.
void run_stealing(std::size_t workers, std::size_t count,
                  const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    workers = std::clamp<std::size_t>(workers, 1, count);
    if (workers == 1) {
        for (std::size_t i = 0; i < count; ++i) task(i);
        return;
    }
    WorkQueues queues(workers);
    for (std::size_t i = 0; i < count; ++i) queues.push(i % workers, i);

    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            std::size_t index = 0;
            while (queues.pop(w, index)) {
                try {
                    task(index);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
            }
        });
    }
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
}

core::Disaster make_disaster(DisasterKind kind, const core::CompiledModel& model) {
    switch (kind) {
        case DisasterKind::None: {
            // The all-zeros disaster: nothing failed, the measure starts
            // from the all-up state.
            core::Disaster d;
            d.name = "none";
            d.failed_per_phase.assign(model.model().phases.size(), 0);
            return d;
        }
        case DisasterKind::AllPumps: return watertree::disaster1(model.model());
        case DisasterKind::Mixed: return watertree::disaster2();
    }
    throw InvalidArgument("unknown DisasterKind");
}

engine::AnalysisSession::CompiledPtr compile_item(engine::AnalysisSession& session,
                                                  const ScenarioGrid& grid,
                                                  const WorkItem& item,
                                                  const RunnerOptions& options) {
    const auto& strat = watertree::strategy(item.strategy);
    const auto& params = grid.parameters[item.parameter_index].params;
    // Reliability is defined on the repair-free model regardless of variant;
    // a property can request the same semantics via strip_repair.
    const bool with_repair =
        item.variant.repair && item.measure.kind != MeasureKind::Reliability &&
        !(item.measure.kind == MeasureKind::Property && item.measure.strip_repair);
    return watertree::compile_line(session, item.line, strat, item.variant.encoding,
                                   params, with_repair, options.reduction,
                                   options.symmetry, item.scale.extra_pumps);
}

ScenarioResult evaluate(engine::AnalysisSession& session, const ScenarioGrid& grid,
                        const WorkItem& item, const RunnerOptions& options) {
    const double t0 = now_seconds();
    const auto model = compile_item(session, grid, item, options);
    const core::ReductionPolicy reduction = options.reduction;
    // Route the quotient lookup through the session so the lump cache
    // counters see one request per cell (the measures below reuse the same
    // shared quotient).
    if (reduction == core::ReductionPolicy::Auto &&
        item.measure.kind != MeasureKind::StateSpace) {
        (void)session.quotient(model);
    }
    const auto transient = core::session_transient(session);

    ScenarioResult result;
    result.item = item;
    result.model_states = model->state_count();
    result.model_transitions = model->transition_count();
    result.model_full_states = model->symmetry_full_states();
    switch (item.measure.kind) {
        case MeasureKind::Availability:
            result.values = {core::availability(session, model)};
            break;
        case MeasureKind::SteadyStateCost:
            result.values = {core::steady_state_cost(session, model)};
            break;
        case MeasureKind::StateSpace:
            result.values = {static_cast<double>(model->state_count())};
            break;
        case MeasureKind::Reliability:
            result.values = core::reliability_series(*model, item.measure.times, transient);
            break;
        case MeasureKind::Survivability:
            result.values = core::survivability_series(
                *model, make_disaster(item.measure.disaster, *model),
                item.measure.service_level, item.measure.times, transient);
            break;
        case MeasureKind::InstantaneousCost:
            result.values = core::instantaneous_cost_series(
                *model, make_disaster(item.measure.disaster, *model), item.measure.times,
                transient);
            break;
        case MeasureKind::AccumulatedCost:
            result.values = core::accumulated_cost_series(
                *model, make_disaster(item.measure.disaster, *model), item.measure.times,
                transient);
            break;
        case MeasureKind::Property: {
            const auto formula = logic::parse_csl(item.measure.property);
            if (item.measure.is_series()) {
                // Time-parametric query from the cell's disaster state,
                // swept over the grid by the measure-series kernels.
                const auto initial = model->disaster_distribution(
                    make_disaster(item.measure.disaster, *model));
                result.values = logic::check_series(session, model, *formula,
                                                    item.measure.times, initial);
            } else {
                // As-written evaluation through the session's property
                // cache; boolean verdicts export as 1.0 / 0.0.
                const auto checked = session.check_property(model, *formula);
                result.values = {checked->value.has_value()
                                     ? *checked->value
                                     : (checked->holds.value_or(false) ? 1.0 : 0.0)};
            }
            break;
        }
    }
    result.seconds = now_seconds() - t0;
    return result;
}

// ---------------------------------------------------------------------------
// Fusion pass (RunnerOptions::batch == Auto).  Cells fuse when they would
// evolve the SAME matrix over the SAME time grid: same model key, same
// measure class (survivability at one exact service level, or instantaneous
// cost), same grid bits.  Their initial distributions — one per distinct
// disaster — become the columns of one BatchTransientEvolver, whose columns
// are bitwise identical to per-cell evolution, so fused cells export the
// same bytes the per-cell path would.  Reliability keeps its own path (its
// initial vector is the chain initial, never a second column),
// AccumulatedCost interleaves a survival-weighted recurrence that is not a
// plain transient evolution, and Property routes through the CSL checker.
// ---------------------------------------------------------------------------

bool fusible(const WorkItem& item) {
    return (item.measure.kind == MeasureKind::Survivability ||
            item.measure.kind == MeasureKind::InstantaneousCost) &&
           !item.measure.times.empty();
}

/// Exact-bits text of a double (fusion keys must distinguish every value
/// %.17g round-trips to, and -0.0 from +0.0).
std::string double_bits(double v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
    return buf;
}

std::string fuse_key(const WorkItem& item) {
    std::string key = item.model_key();
    key += '\n';
    if (item.measure.kind == MeasureKind::Survivability) {
        key += "surv@" + double_bits(item.measure.service_level);
    } else {
        key += "cost";
    }
    key += '\n';
    for (double t : item.measure.times) key += double_bits(t) + ",";
    return key;
}

/// One column of a fused batch: the cells (usually one — expand()
/// deduplicates) that read this disaster's trajectory.
struct BatchColumn {
    std::size_t first_cell = 0;        ///< representative item index
    std::vector<std::size_t> cells;    ///< item indices served by this column
};

struct BatchPlan {
    std::vector<std::size_t> cells;    ///< every item index in this batch
    std::vector<BatchColumn> columns;  ///< one per distinct disaster
};

void evaluate_batch(engine::AnalysisSession& session, const ScenarioGrid& grid,
                    const std::vector<WorkItem>& items, const BatchPlan& plan,
                    const RunnerOptions& options, std::vector<ScenarioResult>& results) {
    const double t0 = now_seconds();
    // Mirror the per-cell path's session traffic — one compile lookup and
    // one quotient lookup per cell — so the footer counters are independent
    // of the batch policy.
    engine::AnalysisSession::CompiledPtr model;
    for (const std::size_t idx : plan.cells) {
        model = compile_item(session, grid, items[idx], options);
        if (options.reduction == core::ReductionPolicy::Auto) {
            (void)session.quotient(model);
        }
    }
    const WorkItem& first = items[plan.cells.front()];
    const core::FusedSeriesPlan fused =
        first.measure.kind == MeasureKind::Survivability
            ? core::survivability_fused_plan(*model, first.measure.service_level)
            : core::instantaneous_cost_fused_plan(*model);

    std::vector<std::vector<double>> columns;
    columns.reserve(plan.columns.size());
    for (const auto& col : plan.columns) {
        columns.push_back(core::fused_initial(
            *model, make_disaster(items[col.first_cell].measure.disaster, *model)));
    }

    for (const std::size_t idx : plan.cells) {
        ScenarioResult& r = results[idx];
        r.item = items[idx];
        r.model_states = model->state_count();
        r.model_transitions = model->transition_count();
        r.model_full_states = model->symmetry_full_states();
        r.values.clear();
        r.values.reserve(first.measure.times.size());
    }

    ctmc::BatchTransientEvolver evolver(*fused.chain, columns,
                                        core::session_transient(session));
    std::vector<double> column(fused.chain->state_count(), 0.0);
    for (const double t : first.measure.times) {
        evolver.advance_to(t);
        for (std::size_t c = 0; c < plan.columns.size(); ++c) {
            evolver.extract_column(c, column);
            const double value = fused.reduce(column);
            for (const std::size_t idx : plan.columns[c].cells) {
                results[idx].values.push_back(value);
            }
        }
    }

    const double elapsed = now_seconds() - t0;
    for (const std::size_t idx : plan.cells) {
        results[idx].seconds = elapsed / static_cast<double>(plan.cells.size());
    }
    session.record_batch(plan.cells.size(), plan.columns.size(), elapsed);
}

}  // namespace

SweepReport SweepRunner::run(const ScenarioGrid& grid) {
    return run(grid, shard_slice(expand(grid), options_.shard));
}

SweepReport SweepRunner::run(const ScenarioGrid& grid, const std::vector<WorkItem>& items) {
    for (const auto& item : items) {
        if (item.parameter_index >= grid.parameters.size()) {
            throw InvalidArgument("SweepRunner: work item '" + item.key() +
                                  "' indexes parameter set " +
                                  std::to_string(item.parameter_index) +
                                  " but the grid has " +
                                  std::to_string(grid.parameters.size()));
        }
    }
    const double t0 = now_seconds();
    const auto stats_before = session_.stats();
    const std::size_t workers = engine::resolve_threads(options_.threads);

    // Phase 1: compile each unique model prefix exactly once.  Without this
    // barrier two work items sharing a prefix could race into the session
    // cache and compile the same model twice.
    struct ModelWork {
        std::size_t first_item;
        bool needs_quotient = false;  ///< any sharing item runs a solver
    };
    std::map<std::string, ModelWork> unique_models;  // model key -> plan
    for (std::size_t i = 0; i < items.size(); ++i) {
        auto& work = unique_models.emplace(items[i].model_key(), ModelWork{i}).first->second;
        if (items[i].measure.kind != MeasureKind::StateSpace) work.needs_quotient = true;
    }
    std::vector<const ModelWork*> to_compile;
    to_compile.reserve(unique_models.size());
    for (const auto& [key, work] : unique_models) to_compile.push_back(&work);
    run_stealing(workers, to_compile.size(), [&](std::size_t i) {
        const auto model =
            compile_item(session_, grid, items[to_compile[i]->first_item], options_);
        // Build the quotient inside the barrier too, so phase 2 never
        // serialises behind a partition refinement (and the lump counters
        // attribute the miss to this run).
        if (options_.reduction == core::ReductionPolicy::Auto &&
            to_compile[i]->needs_quotient) {
            (void)session_.quotient(model);
        }
    });

    // Fusion pass: under BatchPolicy::Auto, cells sharing an evolution
    // matrix and time grid are grouped into batches; everything else — and
    // singleton groups, where batching buys nothing — keeps the per-cell
    // path.  Group iteration is over a std::map, so the batch list (and
    // with it every result byte and counter) is deterministic.
    std::vector<std::size_t> solo;
    std::vector<BatchPlan> batches;
    if (options_.batch == core::BatchPolicy::Auto) {
        std::map<std::string, BatchPlan> groups;
        std::map<std::string, std::map<std::string, std::size_t>> column_of;
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (!fusible(items[i])) {
                solo.push_back(i);
                continue;
            }
            const std::string key = fuse_key(items[i]);
            BatchPlan& plan = groups[key];
            plan.cells.push_back(i);
            const std::string column_key = to_string(items[i].measure.disaster);
            const auto [slot, inserted] =
                column_of[key].emplace(column_key, plan.columns.size());
            if (inserted) {
                plan.columns.push_back(BatchColumn{i, {i}});
            } else {
                plan.columns[slot->second].cells.push_back(i);
            }
        }
        for (auto& [key, plan] : groups) {
            if (plan.cells.size() < 2) {
                solo.insert(solo.end(), plan.cells.begin(), plan.cells.end());
            } else {
                batches.push_back(std::move(plan));
            }
        }
        std::sort(solo.begin(), solo.end());
    } else {
        solo.resize(items.size());
        std::iota(solo.begin(), solo.end(), std::size_t{0});
    }

    // Phase 2: evaluate every cell; results land in grid order by index.
    SweepReport report;
    report.results.resize(items.size());
    run_stealing(workers, solo.size() + batches.size(), [&](std::size_t task) {
        if (task < solo.size()) {
            const std::size_t i = solo[task];
            report.results[i] = evaluate(session_, grid, items[i], options_);
        } else {
            evaluate_batch(session_, grid, items, batches[task - solo.size()], options_,
                           report.results);
        }
    });

    report.unique_models = unique_models.size();
    for (const auto& r : report.results) {
        report.state_points += r.model_states * std::max<std::size_t>(r.values.size(), 1);
    }
    report.stats = session_.stats() - stats_before;
    report.wall_seconds = now_seconds() - t0;
    return report;
}

}  // namespace arcade::sweep
