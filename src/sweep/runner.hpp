// Parallel execution of expanded scenario grids over one AnalysisSession.
//
// Two phases, both work-stealing over per-thread deques:
//
//   1. every *unique* model prefix of the grid is compiled exactly once
//      (through the session, so a repeated sweep — or a prefix another
//      harness already compiled — is a pure cache hit);
//   2. the measures evaluate in parallel, each series walking its whole
//      time grid with a single TransientEvolver.
//
// Results land in deterministic grid order regardless of thread count or
// steal pattern: workers write into a pre-sized slot per work item.  The
// report carries the session-counter delta (cache effectiveness) and a
// states/sec throughput figure for the perf harnesses.
#ifndef ARCADE_SWEEP_RUNNER_HPP
#define ARCADE_SWEEP_RUNNER_HPP

#include <cstddef>
#include <vector>

#include "engine/session.hpp"
#include "sweep/scenario.hpp"

namespace arcade::sweep {

/// One evaluated grid cell.  `values` has one entry per time-grid point for
/// series measures and exactly one entry for scalar measures (for
/// MeasureKind::StateSpace, the state count).
struct ScenarioResult {
    WorkItem item;
    std::vector<double> values;
    std::size_t model_states = 0;       ///< state count of the compiled model
    std::size_t model_transitions = 0;  ///< transition count of the compiled model
    /// Exact full-chain state count recovered from symmetry orbit sizes;
    /// equals model_states when the model was explored without symmetry
    /// reduction (the state-space scaling report's numerator).
    double model_full_states = 0.0;
    double seconds = 0.0;               ///< wall time of this cell's evaluation
};

struct SweepReport {
    std::vector<ScenarioResult> results;  ///< deterministic grid order
    engine::SessionStats stats;           ///< session-counter delta for this run
    double wall_seconds = 0.0;
    std::size_t unique_models = 0;  ///< distinct compiled-model prefixes
    std::size_t state_points = 0;   ///< sum of model states × grid points solved

    /// Solved state-points per second of wall time (0 when degenerate).
    [[nodiscard]] double states_per_second() const noexcept {
        return wall_seconds > 0.0 ? static_cast<double>(state_points) / wall_seconds : 0.0;
    }
    /// Fraction of compile + steady-state requests served from cache.
    [[nodiscard]] double cache_hit_rate() const noexcept {
        const std::size_t hits = stats.compile_hits + stats.steady_state_hits;
        const std::size_t total = hits + stats.compile_misses + stats.steady_state_misses;
        return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
};

struct RunnerOptions {
    unsigned threads = 0;  ///< worker threads; 0 = hardware concurrency
    /// Which slice of the expanded work list this process runs (1/1 = all).
    /// Applies to run(grid) only; pre-expanded item lists are the caller's.
    ShardSpec shard;
    /// Analyse every cell on the automatic lumped quotient of its model?
    /// Flows into CompileOptions::reduction for every compile of the run;
    /// quotients are built in the phase-1 compile barrier and the report's
    /// stats carry the lump cache counters and reduction sizes.
    core::ReductionPolicy reduction = core::default_reduction_policy();
    /// On-the-fly symmetry reduction (ARCADE_SYMMETRY): under Auto every
    /// compile of the run explores the orbit quotient over interchangeable
    /// components directly; the report's stats carry the symmetry counters.
    core::SymmetryPolicy symmetry = core::default_symmetry_policy();
    /// Batched multi-vector transient evolution (ARCADE_BATCH): under Auto
    /// the runner fuses survivability / instantaneous-cost cells that share
    /// a model, an evolution matrix and a time grid into one
    /// BatchTransientEvolver (their disasters become the batch columns) and
    /// scatters the per-column values back to their cells.  Batched columns
    /// are bitwise identical to per-cell evolution, so exported CSVs are
    /// byte-identical under either policy; the report's stats carry the
    /// batch_cells_fused / batch_columns / batch_seconds counters.
    core::BatchPolicy batch = core::default_batch_policy();
};

class SweepRunner {
public:
    explicit SweepRunner(engine::AnalysisSession& session, RunnerOptions options = {})
        : session_(session), options_(options) {}

    /// expand()s the grid, keeps this runner's shard of the work list, and
    /// evaluates every item.  The first worker exception (e.g. an
    /// inconsistent disaster) is rethrown after the pool drains.
    [[nodiscard]] SweepReport run(const ScenarioGrid& grid);

    /// Evaluates pre-expanded items (callers that filter or re-order cells).
    [[nodiscard]] SweepReport run(const ScenarioGrid& grid,
                                  const std::vector<WorkItem>& items);

private:
    engine::AnalysisSession& session_;
    RunnerOptions options_;
};

}  // namespace arcade::sweep

#endif  // ARCADE_SWEEP_RUNNER_HPP
