// The DSN 2010 paper's figures and tables as named ScenarioGrids.
//
// Every artefact of the paper's evaluation is one declarative spec here —
// the figure/table harnesses under bench/ are thin mains that run the spec
// through a SweepRunner and call the matching render function.  The golden
// tests assert that each rendered artefact is byte-identical to the
// hand-rolled measure loops the harnesses carried before the migration, so
// the sweep layer provably subsumes them.
//
//   fig3     reliability over time, both lines (repairs stripped)
//   fig4/5   survivability, Line 1, Disaster 1, recovery to X1 / X2
//   fig6/7   instantaneous / accumulated cost, Line 1, Disaster 1
//   fig8/9   survivability, Line 2, Disaster 2, recovery to X1 / X3
//   fig10/11 instantaneous / accumulated cost, Line 2, Disaster 2
//   table1   state-space sizes (individual + lumped encodings)
//   table2   steady-state availability per strategy
//   everything  the whole evaluation in a single grid (examples/arcade_sweep)
#ifndef ARCADE_SWEEP_PAPER_HPP
#define ARCADE_SWEEP_PAPER_HPP

#include <iosfwd>

#include "sweep/runner.hpp"

namespace arcade::sweep::paper {

[[nodiscard]] ScenarioGrid fig3();
[[nodiscard]] ScenarioGrid fig4();
[[nodiscard]] ScenarioGrid fig5();
[[nodiscard]] ScenarioGrid fig6();
[[nodiscard]] ScenarioGrid fig7();
[[nodiscard]] ScenarioGrid fig8();
[[nodiscard]] ScenarioGrid fig9();
[[nodiscard]] ScenarioGrid fig10();
[[nodiscard]] ScenarioGrid fig11();
[[nodiscard]] ScenarioGrid table1();
[[nodiscard]] ScenarioGrid table2();

/// The whole paper evaluation in one grid: both lines × all five strategies
/// × (availability + the six figure measures with their time grids).
/// Disaster-2 measures prune themselves off Line 1.
[[nodiscard]] ScenarioGrid everything();

/// everything()'s measures re-expressed as CSL/CSRL properties
/// (watertree::properties) — the same lines, strategies, disasters and time
/// grids, every cell a MeasureKind::Property checked through the engine
/// path.  Cell for cell, the report's values are bit-identical to
/// everything()'s under the same ReductionPolicy (pinned by
/// test_property_sweep).
[[nodiscard]] ScenarioGrid properties();

/// First result of `report` matching the given cell coordinates, or nullptr.
/// An empty `variant` matches any variant name; `parameter_index` selects
/// the grid's parameter set (0 = the baseline, which is the only set in
/// every paper grid — multi-set reports like the MTTR study pass the rest).
[[nodiscard]] const ScenarioResult* find(const SweepReport& report, int line,
                                         const std::string& strategy, MeasureKind kind,
                                         DisasterKind disaster = DisasterKind::None,
                                         double service_level = 1.0,
                                         const std::string& variant = {},
                                         std::size_t parameter_index = 0);

/// First property-measure result of `report` matching the cell coordinates
/// and the exact formula text, or nullptr (two property cells of one grid
/// differ only by their formula).
[[nodiscard]] const ScenarioResult* find_property(const SweepReport& report, int line,
                                                  const std::string& strategy,
                                                  const std::string& formula);

/// find(), but a missing cell throws InvalidArgument naming the coordinates
/// (the renderers' contract: a report of the wrong grid fails loudly).
[[nodiscard]] const ScenarioResult& find_or_throw(
    const SweepReport& report, int line, const std::string& strategy, MeasureKind kind,
    DisasterKind disaster = DisasterKind::None, double service_level = 1.0,
    const std::string& variant = {}, std::size_t parameter_index = 0);

/// The paper's five strategy names in Table 1 order (the watertree layer's
/// paper_strategies(), as the strings a ScenarioGrid takes).
[[nodiscard]] std::vector<std::string> strategy_names();

// Renderers: turn the report of the matching grid into the exact artefact
// (figure block or table, including its preamble) the pre-migration harness
// printed.  They expect an unsharded report of the same-named grid and
// throw InvalidArgument when a cell is missing.
void render_fig3(const SweepReport& report, std::ostream& os);
void render_fig4(const SweepReport& report, std::ostream& os);
void render_fig5(const SweepReport& report, std::ostream& os);
void render_fig6(const SweepReport& report, std::ostream& os);
void render_fig7(const SweepReport& report, std::ostream& os);
void render_fig8(const SweepReport& report, std::ostream& os);
void render_fig9(const SweepReport& report, std::ostream& os);
void render_fig10(const SweepReport& report, std::ostream& os);
void render_fig11(const SweepReport& report, std::ostream& os);
void render_table1(const SweepReport& report, std::ostream& os);
void render_table2(const SweepReport& report, std::ostream& os);

/// Renders the properties() report: the Table 2 availability column from the
/// S=? property and the Figure 8 survivability grid from its U<=t property,
/// each curve/cell labelled by its formula.
void render_properties(const SweepReport& report, const ScenarioGrid& grid,
                       std::ostream& os);

}  // namespace arcade::sweep::paper

#endif  // ARCADE_SWEEP_PAPER_HPP
