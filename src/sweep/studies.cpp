#include "sweep/studies.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

#include "sweep/paper.hpp"
#include "support/errors.hpp"
#include "support/series.hpp"

namespace arcade::sweep::studies {

using paper::find_or_throw;

ScenarioGrid ablation_encodings() {
    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = paper::strategy_names();
    grid.variants = {individual_variant(), lumped_variant()};
    grid.measures = {{MeasureKind::Availability, DisasterKind::None, 1.0, {}}};
    return grid;
}

void render_ablation_encodings(const SweepReport& report, std::ostream& os) {
    os << "=== Ablation: individual vs lumped encoding ===\n\n";
    Table table({"Model", "Indiv. states", "Lumped states", "Reduction", "Indiv. avail",
                 "Lumped avail", "|diff|"});
    char buf[64];
    for (const int line : {1, 2}) {
        for (const auto& name : paper::strategy_names()) {
            const auto& individual = find_or_throw(report, line, name,
                                                   MeasureKind::Availability,
                                                   DisasterKind::None, 1.0, "individual");
            const auto& lumped = find_or_throw(report, line, name,
                                               MeasureKind::Availability,
                                               DisasterKind::None, 1.0, "lumped");
            const double ai = individual.values.front();
            const double al = lumped.values.front();
            std::vector<std::string> cells;
            cells.emplace_back("line" + std::to_string(line) + " " + name);
            cells.emplace_back(std::to_string(individual.model_states));
            cells.emplace_back(std::to_string(lumped.model_states));
            std::snprintf(buf, sizeof buf, "%.1fx",
                          static_cast<double>(individual.model_states) /
                              static_cast<double>(lumped.model_states));
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", ai);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.7f", al);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.1e", std::abs(ai - al));
            cells.emplace_back(buf);
            table.add_row(std::move(cells));
        }
    }
    table.print(os);
    os << "\n(measures agree to solver precision; the lumped encoding is the\n"
          " 'drastic reduction' the paper's conclusion anticipates)\n";
}

ScenarioGrid ablation_preemption() {
    ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1", "FRF-1-pre", "FRF-2", "FRF-2-pre",
                       "FFF-1", "FFF-1-pre", "FFF-2", "FFF-2-pre"};
    grid.measures = {
        {MeasureKind::Availability, DisasterKind::None, 1.0, {}},
        {MeasureKind::Survivability, DisasterKind::Mixed, 1.0, {0.0, 10.0}},
    };
    return grid;
}

ScenarioGrid ablation_preemption_sizes() {
    ScenarioGrid grid;
    grid.lines = {2};
    grid.strategies = {"FRF-1-pre"};
    grid.variants = {individual_variant()};
    grid.measures = {{MeasureKind::StateSpace, DisasterKind::None, 1.0, {}}};
    return grid;
}

void render_ablation_preemption(const SweepReport& report, const SweepReport& sizes,
                                std::ostream& os) {
    os << "=== Ablation: non-preemptive (paper) vs preemptive scheduling ===\n\n";
    Table table({"Strategy", "Avail (non-pre)", "Avail (preempt)", "Surv@10h X4 (non-pre)",
                 "Surv@10h X4 (preempt)"});
    char buf[64];
    for (const auto* name : {"FRF-1", "FRF-2", "FFF-1", "FFF-2"}) {
        const std::string pre = std::string(name) + "-pre";
        std::vector<std::string> cells;
        cells.emplace_back(name);
        std::snprintf(buf, sizeof buf, "%.7f",
                      find_or_throw(report, 2, name, MeasureKind::Availability,
                                    DisasterKind::None, 1.0, {})
                          .values.front());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.7f",
                      find_or_throw(report, 2, pre, MeasureKind::Availability,
                                    DisasterKind::None, 1.0, {})
                          .values.front());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f",
                      find_or_throw(report, 2, name, MeasureKind::Survivability,
                                    DisasterKind::Mixed, 1.0, {})
                          .values.back());
        cells.emplace_back(buf);
        std::snprintf(buf, sizeof buf, "%.5f",
                      find_or_throw(report, 2, pre, MeasureKind::Survivability,
                                    DisasterKind::Mixed, 1.0, {})
                          .values.back());
        cells.emplace_back(buf);
        table.add_row(std::move(cells));
    }
    table.print(os);
    os << "\n(state spaces also differ: preemption needs no tracked in-repair\n"
          " slot, so the individual encoding shrinks from 8129 states to "
       << find_or_throw(sizes, 2, "FRF-1-pre", MeasureKind::StateSpace,
                        DisasterKind::None, 1.0, "individual")
              .model_states
       << ")\n";
}

ScenarioGrid mttr_sensitivity(const std::vector<double>& scales) {
    if (scales.empty()) {
        throw InvalidArgument("mttr_sensitivity: at least one scale factor is required");
    }
    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = paper::strategy_names();
    grid.parameters.clear();
    char buf[64];
    for (const double scale : scales) {
        if (scale <= 0.0) {
            throw InvalidArgument("mttr_sensitivity: scale factors must be positive");
        }
        ParameterSet set;
        std::snprintf(buf, sizeof buf, "repair-rate-%.2fx", scale);
        set.name = buf;
        // Scaling every repair *rate* by `scale` divides every MTTR by it.
        set.params.pump_mttr /= scale;
        set.params.softener_mttr /= scale;
        set.params.sandfilter_mttr /= scale;
        set.params.reservoir_mttr /= scale;
        grid.parameters.push_back(std::move(set));
    }
    grid.measures = {
        {MeasureKind::Availability, DisasterKind::None, 1.0, {}},
        {MeasureKind::SteadyStateCost, DisasterKind::None, 1.0, {}},
    };
    return grid;
}

void render_mttr_sensitivity(const SweepReport& report, const ScenarioGrid& grid,
                             std::ostream& os) {
    const auto render = [&](MeasureKind kind, const char* title, const char* format) {
        os << title;
        std::vector<std::string> header{"Line/Strategy"};
        for (const auto& set : grid.parameters) header.push_back(set.name);
        Table table(std::move(header));
        char buf[64];
        for (const int line : grid.lines) {
            for (const auto& name : grid.strategies) {
                std::vector<std::string> cells{"L" + std::to_string(line) + " " + name};
                for (std::size_t p = 0; p < grid.parameters.size(); ++p) {
                    const auto& cell = find_or_throw(report, line, name, kind,
                                                     DisasterKind::None, 1.0, {}, p);
                    std::snprintf(buf, sizeof buf, format, cell.values.front());
                    cells.emplace_back(buf);
                }
                table.add_row(std::move(cells));
            }
        }
        table.print(os);
    };
    render(MeasureKind::Availability,
           "=== MTTR sensitivity: availability vs repair-rate scale ===\n\n", "%.7f");
    os << "\n";
    render(MeasureKind::SteadyStateCost,
           "=== MTTR sensitivity: long-run cost rate vs repair-rate scale ===\n\n",
           "%.4f");
}

ScenarioGrid pump_scaling(std::size_t max_extra_pumps) {
    ScenarioGrid grid;
    grid.lines = {1, 2};
    grid.strategies = {"FRF-1"};
    grid.variants = {individual_variant()};
    grid.scales.clear();
    for (std::size_t extra = 0; extra <= max_extra_pumps; ++extra) {
        ScaleSpec scale;
        if (extra > 0) scale.name = "pumps+" + std::to_string(extra);
        scale.extra_pumps = extra;
        grid.scales.push_back(std::move(scale));
    }
    grid.measures = {{MeasureKind::StateSpace, DisasterKind::None, 1.0, {}}};
    return grid;
}

void render_pump_scaling(const SweepReport& report, const ScenarioGrid& grid,
                         std::ostream& os) {
    os << "=== State-space scaling: spare pumps per line (individual encoding) ===\n\n";
    Table table({"Model", "Pumps", "Explored states", "Full states", "Reduction",
                 "Transitions"});
    char buf[64];
    for (const int line : grid.lines) {
        // Paper configurations: line 1 has 4 pumps, line 2 has 3.
        const std::size_t base_pumps = line == 1 ? 4 : 3;
        for (const auto& scale : grid.scales) {
            const ScenarioResult* cell = nullptr;
            for (const auto& r : report.results) {
                if (r.item.line == line && r.item.scale.name == scale.name &&
                    r.item.measure.kind == MeasureKind::StateSpace) {
                    cell = &r;
                    break;
                }
            }
            if (cell == nullptr) {
                throw InvalidArgument("render_pump_scaling: missing cell line" +
                                      std::to_string(line) + " scale " + scale.name);
            }
            std::vector<std::string> cells;
            cells.emplace_back("line" + std::to_string(line) + " " +
                               cell->item.strategy + " (" + scale.name + ")");
            cells.emplace_back(std::to_string(base_pumps + scale.extra_pumps));
            cells.emplace_back(std::to_string(cell->model_states));
            std::snprintf(buf, sizeof buf, "%.0f", cell->model_full_states);
            cells.emplace_back(buf);
            std::snprintf(buf, sizeof buf, "%.1fx",
                          cell->model_states > 0
                              ? cell->model_full_states /
                                    static_cast<double>(cell->model_states)
                              : 1.0);
            cells.emplace_back(buf);
            cells.emplace_back(std::to_string(cell->model_transitions));
            table.add_row(std::move(cells));
        }
    }
    table.print(os);
    os << "\n(explored = the chain the engine actually built; full = exact count\n"
          " recovered from symmetry orbit sizes; they coincide when symmetry\n"
          " reduction is off)\n";
}

}  // namespace arcade::sweep::studies
