// Declarative scenario grids over the water-treatment case study.
//
// The paper's evaluation is a cross-product: every figure and table walks
// (line × strategy × measure × time grid), and Section 5 adds parameter
// perturbations on top.  Instead of each harness hand-rolling those loops,
// a ScenarioGrid states the cross-product once and expand() flattens it
// into deduplicated WorkItems the parallel runner executes through one
// engine::AnalysisSession — so every work item sharing a
// (line, strategy, encoding, parameters) prefix reuses one CompiledModel
// and one steady-state solve.
#ifndef ARCADE_SWEEP_SCENARIO_HPP
#define ARCADE_SWEEP_SCENARIO_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "arcade/compiler.hpp"
#include "watertree/watertree.hpp"

namespace arcade::sweep {

/// The measures a scenario can evaluate (the paper's Sections 4–5), plus
/// first-class CSL/CSRL properties as a grid axis.
enum class MeasureKind {
    Availability,       ///< scalar: S=?["operational"]
    SteadyStateCost,    ///< scalar: long-run expected cost rate
    StateSpace,         ///< scalar: state count of the compiled model (Table 1)
    Reliability,        ///< series: repairs stripped, P[never left full service]
    Survivability,      ///< series: P[service >= level within t | disaster]
    InstantaneousCost,  ///< series: E[cost rate at t | disaster]
    AccumulatedCost,    ///< series: E[cost over [0,t] | disaster]
    /// A CSL/CSRL formula (MeasureSpec::property), checked through the
    /// session's property cache.  With an empty time grid the formula is
    /// evaluated as written (steady-state queries reuse the cached solve);
    /// with a grid it must be a time-bounded quantitative query whose bound
    /// sweeps the grid with one shared evolver — the same kernels as the
    /// dedicated measures, so a re-expressed paper measure reproduces its
    /// rows bit for bit (see logic/csl_compiled.hpp).
    Property,
};

[[nodiscard]] std::string to_string(MeasureKind kind);

/// Which disaster seeds a GOOD-model measure.
enum class DisasterKind {
    None,      ///< measure starts from the all-up state
    AllPumps,  ///< paper Disaster 1 (derived per line)
    Mixed,     ///< paper Disaster 2 (Line 2 only)
};

[[nodiscard]] std::string to_string(DisasterKind kind);

/// One measure requested of every (line, strategy, parameters) cell.
/// Scalar measures ignore `times`; series measures evaluate the whole grid
/// with a single TransientEvolver (stepping point to point).
struct MeasureSpec {
    MeasureKind kind = MeasureKind::Availability;
    DisasterKind disaster = DisasterKind::None;
    double service_level = 1.0;  ///< survivability recovery target
    std::vector<double> times;   ///< ascending; empty for scalar measures
    /// CSL/CSRL source text (MeasureKind::Property only); parsed — and its
    /// thresholds validated — eagerly at expand() time.
    std::string property;
    /// Strip the repair units before compiling (MeasureKind::Property only):
    /// the reliability semantics, which the Reliability kind applies
    /// implicitly.  Folded into model_key() so such cells compile their own
    /// repair-free model.
    bool strip_repair = false;

    [[nodiscard]] bool is_series() const noexcept {
        if (kind == MeasureKind::Property) return !times.empty();
        return kind != MeasureKind::Availability &&
               kind != MeasureKind::SteadyStateCost && kind != MeasureKind::StateSpace;
    }
};

/// One way of building the model of a cell: the state-space encoding plus
/// whether the repair units are kept.  Table 1 sweeps the encodings; the
/// ablation studies sweep repair on/off.  Named so result rows stay
/// self-describing (like ParameterSet).
struct ModelVariant {
    std::string name = "lumped";
    core::Encoding encoding = core::Encoding::Lumped;
    bool repair = true;  ///< false strips the repair units (without_repair)
};

/// The paper's two encodings as ready-made variants.
[[nodiscard]] ModelVariant lumped_variant();
[[nodiscard]] ModelVariant individual_variant();

/// A named parameter perturbation (the identity perturbation is the paper's
/// baseline).  Named so result rows stay self-describing.
struct ParameterSet {
    std::string name = "paper";
    watertree::Parameters params;
};

/// A named component-count scale: `extra_pumps` spare pumps are added to the
/// line beyond the paper's configuration (the required count is unchanged).
/// The default is the paper model itself — grids that never mention scales
/// behave (and export) exactly as before.
struct ScaleSpec {
    std::string name = "paper";
    std::size_t extra_pumps = 0;

    [[nodiscard]] bool is_default() const noexcept {
        return extra_pumps == 0 && name == "paper";
    }
};

/// The declarative cross-product.  Lines, strategies, model variants,
/// parameter sets and component scales multiply; each resulting model cell
/// evaluates every measure.
struct ScenarioGrid {
    std::vector<int> lines;                  ///< {1}, {2} or {1, 2}
    std::vector<std::string> strategies;     ///< paper names ("DED", "FRF-1", ...)
    std::vector<ModelVariant> variants = {ModelVariant{}};
    std::vector<ParameterSet> parameters = {ParameterSet{}};
    std::vector<ScaleSpec> scales = {ScaleSpec{}};
    std::vector<MeasureSpec> measures;
};

/// One executable cell of the expanded grid.
struct WorkItem {
    int line = 0;
    std::string strategy;
    ModelVariant variant;
    std::size_t parameter_index = 0;  ///< into ScenarioGrid::parameters
    MeasureSpec measure;
    /// Position in the deterministic expand() order.  Shard slices keep the
    /// original indices, so results from disjoint shards stable-sort by
    /// `index` back into exactly the unsharded order.
    std::size_t index = 0;
    /// Component-count scale of the cell (the default is the paper model, so
    /// existing aggregate construction keeps meaning "unscaled").
    ScaleSpec scale;

    /// Stable identity used for deduplication and result labelling.
    [[nodiscard]] std::string key() const;
    /// Identity of the compiled-model prefix shared with other items
    /// (encoding and effective repair included; the variant *name* is not —
    /// two variants describing the same model share one compile).
    [[nodiscard]] std::string model_key() const;
};

/// Flattens `grid` into work items in deterministic grid order
/// (line-major, then strategy, variant, parameter set, measure), dropping
/// exact duplicates (same line, strategy, variant, parameters and measure).
/// Cells whose disaster is undefined for the line (Mixed on Line 1) are
/// pruned, so one spec can span both lines.  Malformed specs — unknown
/// strategy names, unsorted time grids, a reliability measure with a
/// disaster — throw InvalidArgument here, not mid-run.
[[nodiscard]] std::vector<WorkItem> expand(const ScenarioGrid& grid);

/// One slice of a sweep partitioned across processes: shard `index` of
/// `count`, 1-based (the CLI spelling is `--shard i/n`).
struct ShardSpec {
    std::size_t index = 1;
    std::size_t count = 1;

    [[nodiscard]] bool is_sharded() const noexcept { return count > 1; }

    /// Parses "i/n" (e.g. "2/3").  Throws InvalidArgument unless
    /// 1 <= i <= n.
    [[nodiscard]] static ShardSpec parse(const std::string& text);
};

/// The contiguous slice of `items` belonging to `shard`: slice sizes differ
/// by at most one, every item lands in exactly one shard, and concatenating
/// the slices for shards 1..n in order reproduces `items` exactly.  Work-item
/// indices are preserved, so per-shard results (and their CSV rows) remain
/// sorted by the unsharded work-item index.
[[nodiscard]] std::vector<WorkItem> shard_slice(const std::vector<WorkItem>& items,
                                                const ShardSpec& shard);

}  // namespace arcade::sweep

#endif  // ARCADE_SWEEP_SCENARIO_HPP
