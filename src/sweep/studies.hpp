// Beyond-the-paper studies as declarative scenario grids: the encoding and
// scheduling ablations (formerly hand-rolled loops in bench/) and the MTTR
// sensitivity grid built on ScenarioGrid::parameters.
//
// Like sweep::paper, each study is a named grid plus a renderer that emits
// the exact artefact its pre-migration harness printed — test_sweep_golden
// pins the ablation outputs byte-identically against the old loop shapes.
#ifndef ARCADE_SWEEP_STUDIES_HPP
#define ARCADE_SWEEP_STUDIES_HPP

#include <iosfwd>
#include <vector>

#include "sweep/runner.hpp"

namespace arcade::sweep::studies {

/// Ablation A1: individual (paper) vs lumped encoding — both lines, all
/// five strategies, availability per encoding (state counts ride along on
/// every result).
[[nodiscard]] ScenarioGrid ablation_encodings();
void render_ablation_encodings(const SweepReport& report, std::ostream& os);

/// Ablation A2: non-preemptive (paper) vs preemptive scheduling on Line 2 —
/// the paper strategies next to their "-pre" variants, availability plus
/// survivability to full service at 10 h after Disaster 2.
[[nodiscard]] ScenarioGrid ablation_preemption();
/// Companion cell for the A2 footnote: the individual-encoding state space
/// of preemptive FRF-1 (no tracked in-repair slot).
[[nodiscard]] ScenarioGrid ablation_preemption_sizes();
void render_ablation_preemption(const SweepReport& report, const SweepReport& sizes,
                                std::ostream& os);

/// MTTR sensitivity: the paper evaluation's long-run measures with every
/// repair rate scaled by each factor (1.0 = the paper's values; the default
/// spans ±50%).  Parameter sets are named "repair-rate-<scale>x", so CSV and
/// JSON rows stay self-describing.
[[nodiscard]] ScenarioGrid mttr_sensitivity(
    const std::vector<double>& scales = {0.50, 0.75, 1.00, 1.25, 1.50});
void render_mttr_sensitivity(const SweepReport& report, const ScenarioGrid& grid,
                             std::ostream& os);

/// Component-count scaling: both lines with 0..max_extra_pumps spare pumps
/// beyond the paper's configuration on the individual encoding, state-space
/// cells only.  Run it with RunnerOptions::symmetry = Auto: each cell's
/// model_states is then the symmetry quotient actually explored while
/// model_full_states is the exact full-chain count recovered from orbit
/// sizes — the growing gap is the point of the study.  (Under Off the grid
/// explores the full chains, which beyond a few extra pumps will hit the
/// exploration guard.)
[[nodiscard]] ScenarioGrid pump_scaling(std::size_t max_extra_pumps = 3);
/// Table-1-style state-space report at each scale: pumps, explored states,
/// full-chain states, transitions and the reduction ratio per row.
void render_pump_scaling(const SweepReport& report, const ScenarioGrid& grid,
                         std::ostream& os);

}  // namespace arcade::sweep::studies

#endif  // ARCADE_SWEEP_STUDIES_HPP
