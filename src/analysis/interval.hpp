// Abstract interpretation over the typed expr IR — the interval/range
// analysis the model linter (analysis/lint.hpp) is built on.
//
// An AbstractValue over-approximates the set of concrete expr::Values an
// expression can take when its free variables range over their declared
// bounds: numeric possibilities are a closed interval [lo, hi] (with an
// "all integers" refinement so comparisons can tighten by whole units),
// boolean possibilities are the pair {can_true, can_false}, and may_fail
// records whether evaluation can throw a ModelError (type mismatch,
// division by zero).  Soundness invariant: every value Expr::evaluate can
// produce under some in-range valuation is contained in the abstraction —
// so "can_true == false" PROVES a guard unsatisfiable, and an interval
// inside the declared range PROVES an assignment safe; the converse
// directions are approximate and the linter confirms them by enumeration
// where feasible.
//
// abstract_eval mirrors the concrete evaluator's semantics exactly where it
// matters: `&`/`|` short-circuit (the rhs of a provably-false lhs cannot
// fail), ite evaluates each branch under the condition-refined environment,
// and every operator fails on the operand types apply_binary/apply_unary
// reject.
#ifndef ARCADE_ANALYSIS_INTERVAL_HPP
#define ARCADE_ANALYSIS_INTERVAL_HPP

#include <map>
#include <string>

#include "expr/expr.hpp"

namespace arcade::analysis {

/// Over-approximation of the concrete values an expression can take.
struct AbstractValue {
    /// Numeric possibilities: the closed interval [lo, hi] when has_numeric.
    bool has_numeric = false;
    double lo = 0.0;
    double hi = 0.0;
    /// Every numeric possibility is a whole number (lets comparisons refine
    /// by whole units: x > 1 over an integer x means x >= 2).
    bool integral = false;
    /// Boolean possibilities.
    bool can_true = false;
    bool can_false = false;
    /// Evaluation can throw a ModelError (type mismatch, division by zero).
    bool may_fail = false;

    [[nodiscard]] bool has_bool() const noexcept { return can_true || can_false; }
    /// Nothing can come out of this expression but an error.
    [[nodiscard]] bool always_fails() const noexcept {
        return !has_numeric && !has_bool();
    }
    /// Exactly one numeric value and no other possibility.
    [[nodiscard]] bool is_singleton() const noexcept {
        return has_numeric && lo == hi && !has_bool();
    }

    static AbstractValue numeric(double lo, double hi, bool integral = false);
    static AbstractValue boolean(bool can_true, bool can_false);
    static AbstractValue constant(const expr::Value& v);
    /// Unknown identifier: any value, any failure.
    static AbstractValue top();

    /// Least upper bound (set union).
    [[nodiscard]] AbstractValue join(const AbstractValue& other) const;

    /// "[0, 3]", "{true}", "[1, 2] or {false}" — for diagnostics.
    [[nodiscard]] std::string to_string() const;
};

/// Variable/constant name -> abstract value.  Identifiers absent from the
/// environment evaluate to top() (the linter reports them separately).
using AbstractEnv = std::map<std::string, AbstractValue>;

/// Abstract evaluation of `e` under `env`.
[[nodiscard]] AbstractValue abstract_eval(const expr::Expr& e, const AbstractEnv& env);

/// Environment refined by assuming `cond` evaluated to `assume_true`.
/// Understands conjunctions (disjunctions under a negated assumption),
/// negation, and comparisons between one identifier and one constant —
/// enough for the guards and ite conditions the Arcade translation emits
/// (e.g. `s_m = 1 & q_m > 1` tightens q_m to [2, hi]).  Anything it cannot
/// interpret leaves the environment unchanged (always sound: refinement
/// only ever shrinks abstract values).
[[nodiscard]] AbstractEnv refine(AbstractEnv env, const expr::Expr& cond,
                                 bool assume_true);

}  // namespace arcade::analysis

#endif  // ARCADE_ANALYSIS_INTERVAL_HPP
