#include "analysis/lint.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

#include "analysis/interval.hpp"
#include "engine/state_store.hpp"
#include "support/errors.hpp"

namespace arcade::analysis {

namespace {

using expr::Expr;
using modules::Command;
using modules::Module;
using modules::ModuleSystem;
using modules::VarDecl;
using modules::VarType;

/// Environment over one concrete valuation, with constant fallback — the
/// enumeration (witness-confirmation) twin of the explorer's StateEnv.
class ValuationEnv final : public expr::Environment {
public:
    explicit ValuationEnv(const std::map<std::string, expr::Value>& constants)
        : constants_(constants) {}

    std::map<std::string, expr::Value> values;

    [[nodiscard]] expr::Value lookup(const std::string& name) const override {
        const auto it = values.find(name);
        if (it != values.end()) return it->second;
        const auto cit = constants_.find(name);
        if (cit != constants_.end()) return cit->second;
        throw ModelError("unknown identifier '" + name + "' in expression");
    }

private:
    const std::map<std::string, expr::Value>& constants_;
};

/// Outcome of the witness-confirmation pass.
enum class Verdict {
    Confirmed,  ///< a witness valuation exhibits the behaviour
    Refuted,    ///< exhaustive enumeration found no witness
    Unknown,    ///< domain product exceeds the enumeration limit
};

std::string witness_to_string(const std::map<std::string, expr::Value>& w) {
    std::string out;
    for (const auto& [name, value] : w) {
        if (!out.empty()) out += ", ";
        out += name + "=" + value.to_string();
    }
    return out;
}

/// Byte offset of the Identifier node for `name` inside `e`, or npos.
std::size_t identifier_offset(const Expr& e, const std::string& name) {
    if (e.empty()) return Expr::npos;
    const auto& n = e.node();
    if (const auto* id = std::get_if<expr::Identifier>(&n)) {
        return id->name == name ? e.offset() : Expr::npos;
    }
    if (const auto* u = std::get_if<expr::Unary>(&n)) {
        return identifier_offset(u->operand, name);
    }
    if (const auto* b = std::get_if<expr::Binary>(&n)) {
        const std::size_t lhs = identifier_offset(b->lhs, name);
        return lhs != Expr::npos ? lhs : identifier_offset(b->rhs, name);
    }
    if (const auto* ite = std::get_if<expr::Ite>(&n)) {
        for (const Expr* part : {&ite->cond, &ite->then_branch, &ite->else_branch}) {
            const std::size_t off = identifier_offset(*part, name);
            if (off != Expr::npos) return off;
        }
    }
    return Expr::npos;  // literals carry no identifiers
}

class Linter {
public:
    Linter(const ModuleSystem& system, const LintOptions& options)
        : system_(system), options_(options) {
        vars_ = system.all_variables();
        std::vector<engine::FieldSpec> fields;
        fields.reserve(vars_.size());
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            const VarDecl& v = vars_[i];
            var_index_.emplace(v.name, i);
            fields.push_back(engine::FieldSpec{v.low, v.high});
            base_env_[v.name] = v.type == VarType::Bool
                                    ? AbstractValue::boolean(true, true)
                                    : AbstractValue::numeric(
                                          static_cast<double>(v.low),
                                          static_cast<double>(v.high), true);
        }
        layout_ = engine::StateLayout(fields);
        for (const auto& [name, value] : system.constants) {
            base_env_[name] = AbstractValue::constant(value);
        }
    }

    LintReport run() {
        for (const Module& m : system_.modules) check_module(m);
        for (const auto& [name, predicate] : system_.labels) {
            const std::string where = "label '" + name + "'";
            check_expr(predicate, where);
            note_reads(predicate);
            check_constant_predicate(predicate, where);
        }
        for (const auto& decl : system_.rewards) {
            for (std::size_t i = 0; i < decl.items.size(); ++i) {
                const std::string where =
                    "rewards '" + decl.name + "' item " + std::to_string(i + 1);
                check_expr(decl.items[i].guard, where + " guard");
                check_expr(decl.items[i].rate, where + " rate");
                note_reads(decl.items[i].guard);
                note_reads(decl.items[i].rate);
                check_constant_predicate(decl.items[i].guard, where + " guard");
            }
        }
        check_unused_variables();
        for (const auto& [name, offset] : options_.unused_formulas) {
            add("AR010", Severity::Warning, "formula '" + name + "'",
                "formula is defined but never used", offset);
        }
        return std::move(report_);
    }

private:
    const ModuleSystem& system_;
    const LintOptions& options_;
    LintReport report_;
    std::vector<VarDecl> vars_;
    std::map<std::string, std::size_t> var_index_;
    AbstractEnv base_env_;
    engine::StateLayout layout_;
    std::set<std::string> read_;  ///< names read by any expression (AR007)

    void add(std::string id, Severity severity, std::string where, std::string message,
             std::size_t offset = Expr::npos) {
        switch (severity) {
            case Severity::Error: ++report_.errors; break;
            case Severity::Warning: ++report_.warnings; break;
            case Severity::Note: ++report_.notes; break;
        }
        report_.diagnostics.push_back(Diagnostic{std::move(id), severity,
                                                 std::move(message), std::move(where),
                                                 offset});
    }

    [[nodiscard]] bool known_name(const std::string& name) const {
        return var_index_.contains(name) || system_.constants.contains(name);
    }

    void note_reads(const Expr& e) {
        if (e.empty()) return;
        for (const auto& name : e.free_variables()) read_.insert(name);
    }

    /// AR001 + AR009 over one expression.  Returns true when the expression
    /// was handled as a constant (AR009 territory) and the range checks
    /// should not double-report on it.
    bool check_expr(const Expr& e, const std::string& where) {
        if (e.empty()) return false;
        const auto names = e.free_variables();
        std::set<std::string> reported;
        for (const auto& name : names) {
            if (!known_name(name) && reported.insert(name).second) {
                add("AR001", Severity::Error, where, "unknown identifier '" + name + "'",
                    identifier_offset(e, name));
            }
        }
        if (names.empty() && std::get_if<expr::Literal>(&e.node()) == nullptr) {
            ValuationEnv env(system_.constants);
            try {
                const expr::Value v = e.evaluate(env);
                add("AR009", Severity::Note, where,
                    "constant expression '" + e.to_string() + "' (= " + v.to_string() +
                        ") survived constant folding",
                    e.offset());
            } catch (const ModelError& err) {
                add("AR009", Severity::Error, where,
                    "constant expression '" + e.to_string() +
                        "' always fails to evaluate: " + err.what(),
                    e.offset());
            }
            return true;
        }
        return false;
    }

    /// AR008: a label/reward guard that is provably constant.
    void check_constant_predicate(const Expr& e, const std::string& where) {
        if (e.empty() || e.free_variables().empty()) return;  // AR009's case
        const AbstractValue v = abstract_eval(e, base_env_);
        if (v.always_fails() || v.has_numeric) return;  // type errors, not AR008
        if (v.can_true && !v.can_false) {
            add("AR008", Severity::Note, where, "predicate is constantly true",
                e.offset());
        } else if (v.can_false && !v.can_true) {
            add("AR008", Severity::Note, where, "predicate is constantly false",
                e.offset());
        }
    }

    /// Declarations of the variables the given expressions read, in state
    /// order; nullopt when an unknown identifier prevents enumeration.
    [[nodiscard]] std::optional<std::vector<const VarDecl*>> domain_of(
        std::initializer_list<const Expr*> exprs) const {
        std::set<std::size_t> indices;
        for (const Expr* e : exprs) {
            if (e->empty()) continue;
            for (const auto& name : e->free_variables()) {
                const auto it = var_index_.find(name);
                if (it != var_index_.end()) {
                    indices.insert(it->second);
                } else if (!system_.constants.contains(name)) {
                    return std::nullopt;
                }
            }
        }
        std::vector<const VarDecl*> out;
        out.reserve(indices.size());
        for (const std::size_t i : indices) out.push_back(&vars_[i]);
        return out;
    }

    /// Runs `test` over every valuation of `domain` (each variable over its
    /// declared range).  Stops at the first valuation where `test` returns
    /// true and copies it into `witness`.
    template <typename Test>
    Verdict enumerate(const std::vector<const VarDecl*>& domain, Test&& test,
                      std::map<std::string, expr::Value>& witness) const {
        double product = 1.0;
        for (const VarDecl* v : domain) {
            product *= static_cast<double>(v->high - v->low + 1);
            if (product > static_cast<double>(options_.enumeration_limit)) {
                return Verdict::Unknown;
            }
        }
        ValuationEnv env(system_.constants);
        std::vector<long long> raw(domain.size());
        for (std::size_t i = 0; i < domain.size(); ++i) raw[i] = domain[i]->low;
        while (true) {
            for (std::size_t i = 0; i < domain.size(); ++i) {
                env.values[domain[i]->name] = domain[i]->type == VarType::Bool
                                                  ? expr::Value(raw[i] != 0)
                                                  : expr::Value(raw[i]);
            }
            if (test(static_cast<const expr::Environment&>(env))) {
                witness = env.values;
                return Verdict::Confirmed;
            }
            std::size_t d = 0;
            for (; d < domain.size(); ++d) {
                if (++raw[d] <= domain[d]->high) break;
                raw[d] = domain[d]->low;
            }
            if (d == domain.size()) return Verdict::Refuted;
        }
    }

    [[nodiscard]] static bool guard_holds(const Expr& guard,
                                          const expr::Environment& env) {
        try {
            return guard.evaluate(env).as_bool();
        } catch (const ModelError&) {
            return false;  // failing guards surface through their own checks
        }
    }

    void check_module(const Module& m) {
        const std::string mod = "module '" + m.name + "'";
        for (std::size_t c = 0; c < m.commands.size(); ++c) {
            check_command(m.commands[c], mod + " command " + std::to_string(c + 1));
        }
        check_overlaps(m, mod);
    }

    void check_command(const Command& cmd, const std::string& where) {
        const bool guard_const = check_expr(cmd.guard, where + " guard");
        note_reads(cmd.guard);
        for (const auto& alt : cmd.alternatives) {
            note_reads(alt.rate);
            for (const auto& asg : alt.assignments) note_reads(asg.value);
        }

        // AR002: provably unsatisfiable guard.  A sound proof — skip the
        // per-alternative checks, their witnesses could never be reached.
        if (!guard_const) {
            const AbstractValue g = abstract_eval(cmd.guard, base_env_);
            if (!g.can_true) {
                add("AR002", Severity::Warning, where + " guard",
                    "guard '" + cmd.guard.to_string() + "' is never satisfiable",
                    cmd.guard.offset());
                return;
            }
        }

        const AbstractEnv guarded = refine(base_env_, cmd.guard, true);
        for (std::size_t a = 0; a < cmd.alternatives.size(); ++a) {
            const auto& alt = cmd.alternatives[a];
            const std::string alt_where =
                cmd.alternatives.size() == 1
                    ? where
                    : where + " alternative " + std::to_string(a + 1);
            if (!check_expr(alt.rate, alt_where + " rate")) {
                check_rate(cmd.guard, alt.rate, guarded, alt_where + " rate");
            }
            for (const auto& asg : alt.assignments) {
                check_assignment(cmd.guard, asg, guarded, alt_where);
            }
        }
    }

    /// AR004: the rate of an alternative, under the guard-refined env.
    void check_rate(const Expr& guard, const Expr& rate, const AbstractEnv& guarded,
                    const std::string& where) {
        const AbstractValue r = abstract_eval(rate, guarded);
        if (!r.has_numeric && r.has_bool()) {
            add("AR004", Severity::Error, where,
                "rate '" + rate.to_string() + "' is boolean, not numeric",
                rate.offset());
            return;
        }
        const bool suspicious = r.may_fail || !r.has_numeric || r.lo <= 0.0;
        if (!suspicious) return;

        const auto domain = domain_of({&guard, &rate});
        Verdict verdict = Verdict::Unknown;
        std::string confirmed_message;
        Severity confirmed_severity = Severity::Warning;
        std::map<std::string, expr::Value> witness;
        if (domain) {
            // One pass classifies the worst reachable behaviour: evaluation
            // failure and negative rates are errors, zero rates a warning.
            std::string fail_what;
            const auto test = [&](const expr::Environment& env) {
                if (!guard_holds(guard, env)) return false;
                double value = 0.0;
                try {
                    value = rate.evaluate(env).as_double();
                } catch (const ModelError& err) {
                    fail_what = err.what();
                    return true;
                }
                return value <= 0.0;
            };
            verdict = enumerate(*domain, test, witness);
            if (verdict == Verdict::Confirmed) {
                if (!fail_what.empty()) {
                    confirmed_severity = Severity::Error;
                    confirmed_message = "rate '" + rate.to_string() +
                                        "' fails to evaluate (" + fail_what + ")";
                } else {
                    ValuationEnv env(system_.constants);
                    env.values = witness;
                    const double value = rate.evaluate(env).as_double();
                    confirmed_severity = value < 0.0 ? Severity::Error : Severity::Warning;
                    confirmed_message =
                        "rate '" + rate.to_string() + "' evaluates to " +
                        expr::Value(value).to_string() +
                        (value < 0.0 ? "" : " (zero rate: the transition never fires)");
                }
            }
        }
        switch (verdict) {
            case Verdict::Refuted: return;  // abstract interval was imprecise
            case Verdict::Confirmed:
                add("AR004", confirmed_severity, where,
                    confirmed_message + "; witness: " + witness_to_string(witness),
                    rate.offset());
                return;
            case Verdict::Unknown: break;
        }
        std::string message = "rate '" + rate.to_string() + "' has interval " +
                              r.to_string() +
                              (r.has_numeric && r.lo < 0.0
                                   ? ", which admits negative values"
                                   : ", which admits zero or failing values");
        add("AR004", Severity::Warning, where,
            message + " (domain too large to confirm a witness)", rate.offset());
    }

    /// AR005 + AR006 for one assignment.
    void check_assignment(const Expr& guard, const modules::Assignment& asg,
                          const AbstractEnv& guarded, const std::string& where) {
        const std::string here = where + " assignment to '" + asg.variable + "'";
        const auto target_it = var_index_.find(asg.variable);
        if (target_it == var_index_.end()) {
            add("AR001", Severity::Error, here,
                "assignment to unknown variable '" + asg.variable + "'",
                asg.value.offset());
            return;
        }
        const VarDecl& target = vars_[target_it->second];

        // AR006: x' = x.
        if (!asg.value.empty()) {
            if (const auto* id = std::get_if<expr::Identifier>(&asg.value.node())) {
                if (id->name == asg.variable) {
                    add("AR006", Severity::Note, here,
                        "assignment '" + asg.variable + "' = '" + asg.variable +
                            "' has no effect",
                        asg.value.offset());
                    return;
                }
            }
        }
        if (check_expr(asg.value, here)) return;  // constant, handled by AR009

        const AbstractValue v = abstract_eval(asg.value, guarded);
        if (v.always_fails()) {
            add("AR005", Severity::Error, here, "assignment always fails to evaluate",
                asg.value.offset());
            return;
        }
        // Effective raw range: booleans store as 0/1 (explorer semantics);
        // non-integral numerics fail the int conversion at runtime.
        double lo = v.has_bool() ? 0.0 : v.lo;
        double hi = v.has_bool() ? 1.0 : v.hi;
        if (v.has_numeric) {
            lo = std::min(lo, v.lo);
            hi = std::max(hi, v.hi);
        }
        const bool suspicious = v.may_fail || (v.has_numeric && !v.integral) ||
                                lo < static_cast<double>(target.low) ||
                                hi > static_cast<double>(target.high);
        if (!suspicious) return;

        const auto domain = domain_of({&guard, &asg.value});
        Verdict verdict = Verdict::Unknown;
        std::map<std::string, expr::Value> witness;
        std::string fail_what;
        long long escaped = 0;
        if (domain) {
            const auto test = [&](const expr::Environment& env) {
                if (!guard_holds(guard, env)) return false;
                long long raw = 0;
                try {
                    const expr::Value value = asg.value.evaluate(env);
                    raw = value.is_bool() ? static_cast<long long>(value.as_bool())
                                          : value.as_int();
                } catch (const ModelError& err) {
                    fail_what = err.what();
                    return true;
                }
                if (raw < target.low || raw > target.high) {
                    escaped = raw;
                    return true;
                }
                return false;
            };
            verdict = enumerate(*domain, test, witness);
        }
        switch (verdict) {
            case Verdict::Refuted: return;
            case Verdict::Confirmed: {
                std::string message;
                if (!fail_what.empty()) {
                    message = "assignment fails to evaluate (" + fail_what + ")";
                } else {
                    message = "assignment drives '" + asg.variable + "' to " +
                              std::to_string(escaped) + ", outside its declared [" +
                              std::to_string(target.low) + ", " +
                              std::to_string(target.high) + "] (" +
                              std::to_string(field_bits(target)) +
                              "-bit state field)" + pack_cross_check(target_it->second,
                                                                     escaped, witness);
                }
                add("AR005", Severity::Error, here,
                    message + "; witness: " + witness_to_string(witness),
                    asg.value.offset());
                return;
            }
            case Verdict::Unknown: break;
        }
        add("AR005", Severity::Warning, here,
            "assignment has interval " + v.to_string() + ", which may leave '" +
                asg.variable + "' range [" + std::to_string(target.low) + ", " +
                std::to_string(target.high) +
                "] (domain too large to confirm a witness)",
            asg.value.offset());
    }

    [[nodiscard]] static int field_bits(const VarDecl& v) {
        return std::bit_width(static_cast<std::uint64_t>(v.high - v.low));
    }

    /// Cross-checks a confirmed out-of-range witness against the packed
    /// StateLayout exploration will actually use.
    [[nodiscard]] std::string pack_cross_check(
        std::size_t target_index, long long escaped,
        const std::map<std::string, expr::Value>& witness) const {
        std::vector<std::int64_t> state(vars_.size());
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            state[i] = vars_[i].init;
            const auto it = witness.find(vars_[i].name);
            if (it != witness.end()) {
                state[i] = it->second.is_bool()
                               ? static_cast<std::int64_t>(it->second.as_bool())
                               : it->second.as_int();
            }
        }
        state[target_index] = escaped;
        std::vector<std::uint64_t> words(layout_.words_per_state());
        try {
            layout_.pack(std::span<const std::int64_t>(state), words.data());
        } catch (const ModelError& err) {
            return std::string("; state packing rejects it: ") + err.what();
        }
        return "";
    }

    /// AR003: overlapping guards between same-action commands of one module.
    /// Interleaved (empty-action) commands legitimately race, so only
    /// synchronising actions are paired: both alternatives fire under one
    /// action instance, which is almost always a modelling slip.
    void check_overlaps(const Module& m, const std::string& mod) {
        std::map<std::string, std::vector<std::size_t>> by_action;
        for (std::size_t c = 0; c < m.commands.size(); ++c) {
            if (!m.commands[c].action.empty()) {
                by_action[m.commands[c].action].push_back(c);
            }
        }
        for (const auto& [action, indices] : by_action) {
            for (std::size_t i = 0; i < indices.size(); ++i) {
                for (std::size_t j = i + 1; j < indices.size(); ++j) {
                    check_overlap_pair(m, mod, action, indices[i], indices[j]);
                }
            }
        }
    }

    void check_overlap_pair(const Module& m, const std::string& mod,
                            const std::string& action, std::size_t ci, std::size_t cj) {
        const Expr& g1 = m.commands[ci].guard;
        const Expr& g2 = m.commands[cj].guard;
        const std::string where = mod + " commands " + std::to_string(ci + 1) + " and " +
                                  std::to_string(cj + 1) + " [" + action + "]";
        const AbstractValue a1 = abstract_eval(g1, base_env_);
        const AbstractValue a2 = abstract_eval(g2, base_env_);
        if (!a1.can_true || !a2.can_true) return;  // AR002 covers dead guards
        // Cheap refutation: both guards satisfiable, but never together.
        if (!abstract_eval(g2, refine(base_env_, g1, true)).can_true) return;

        const auto domain = domain_of({&g1, &g2});
        std::map<std::string, expr::Value> witness;
        Verdict verdict = Verdict::Unknown;
        if (domain) {
            const auto test = [&](const expr::Environment& env) {
                return guard_holds(g1, env) && guard_holds(g2, env);
            };
            verdict = enumerate(*domain, test, witness);
        }
        if (verdict == Verdict::Refuted) return;
        std::string message = "guards of synchronising action [" + action +
                              "] overlap — both commands fire for one action instance";
        if (verdict == Verdict::Confirmed) {
            message += "; witness: " + witness_to_string(witness);
        } else {
            message += " (domain too large to confirm a witness)";
        }
        add("AR003", Severity::Warning, where, message, g2.offset());
    }

    /// AR007: declared but never read.
    void check_unused_variables() {
        for (const VarDecl& v : vars_) {
            if (!read_.contains(v.name)) {
                add("AR007", Severity::Warning, "variable '" + v.name + "'",
                    "variable is never read by any guard, rate, assignment, label or "
                    "reward");
            }
        }
    }
};

std::string ascii_lower(std::string_view text) {
    std::string out(text);
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return out;
}

}  // namespace

std::optional<LintLevel> parse_lint_level(std::string_view text) {
    const std::string t = ascii_lower(text);
    if (t == "off" || t == "0" || t == "false" || t == "none") return LintLevel::Off;
    if (t == "warn" || t == "warning" || t == "on" || t == "1" || t == "true") {
        return LintLevel::Warn;
    }
    if (t == "error" || t == "strict") return LintLevel::Error;
    return std::nullopt;
}

std::string_view lint_level_name(LintLevel level) noexcept {
    switch (level) {
        case LintLevel::Off: return "off";
        case LintLevel::Warn: return "warn";
        case LintLevel::Error: return "error";
    }
    return "?";
}

std::string_view severity_name(Severity severity) noexcept {
    switch (severity) {
        case Severity::Note: return "note";
        case Severity::Warning: return "warning";
        case Severity::Error: return "error";
    }
    return "?";
}

LintLevel default_lint_level() {
    static const LintLevel level = [] {
        const char* env = std::getenv("ARCADE_LINT");
        if (env == nullptr || *env == '\0') return LintLevel::Warn;
        const auto parsed = parse_lint_level(env);
        if (!parsed) {
            throw ModelError(std::string("ARCADE_LINT: unknown level '") + env +
                             "' (expected off, warn or error)");
        }
        return *parsed;
    }();
    return level;
}

std::string Diagnostic::to_string() const {
    std::string out = std::string(severity_name(severity)) + "[" + id + "]";
    if (!where.empty()) out += " " + where;
    out += ": " + message;
    if (offset != expr::Expr::npos) {
        out += " (source byte " + std::to_string(offset) + ")";
    }
    return out;
}

std::string LintReport::to_string() const {
    std::string out;
    for (const auto& d : diagnostics) {
        out += d.to_string();
        out += '\n';
    }
    return out;
}

LintReport lint(const modules::ModuleSystem& system, const LintOptions& options) {
    return Linter(system, options).run();
}

}  // namespace arcade::analysis
