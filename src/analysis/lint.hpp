// Model linter: static checks over the reactive-modules IR, run before
// exploration (arcade::compile wires it in; examples/arcade_lint exposes it
// standalone).  Built on the abstract interpreter in analysis/interval.hpp.
//
// Check catalogue (stable IDs — tests and golden files reference them):
//   AR001 error    unknown identifier (in an expression, or assignment target)
//   AR002 warning  guard is statically unsatisfiable
//   AR003 warning  two same-action commands in one module have overlapping
//                  guards (their alternatives race within the action)
//   AR004 error/   rate expression can be negative (error, with witness) or
//         warning  zero / can fail to evaluate (warning)
//   AR005 error/   assignment can leave the target's declared range — cross-
//         warning  checked against the StateLayout bit-widths exploration
//                  will pack with (error with witness; warning when the
//                  domain is too large to confirm by enumeration)
//   AR006 note     dead assignment x' = x
//   AR007 warning  variable is never read
//   AR008 note     label or reward guard is constant over the state space
//   AR009 note/    constant expression the folder should have eliminated
//         error    (error when it always fails to evaluate, e.g. 1/0)
//   AR010 warning  formula parsed but never used (fed by the PRISM parser)
//
// Soundness split: "unsatisfiable"/"constant" verdicts are proofs (the
// abstract domain over-approximates), while "can overlap"/"can escape"
// verdicts are confirmed by exhaustive enumeration when the relevant
// variable domains are small enough, and downgraded to warnings otherwise.
#ifndef ARCADE_ANALYSIS_LINT_HPP
#define ARCADE_ANALYSIS_LINT_HPP

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "expr/expr.hpp"
#include "modules/modules.hpp"

namespace arcade::analysis {

enum class Severity { Note, Warning, Error };

/// How much of the linter the compile pipeline runs and enforces.
enum class LintLevel {
    Off,    ///< skip the lint stage entirely
    Warn,   ///< run, report to stderr, never block compilation
    Error,  ///< run, throw ModelError when any error-severity finding exists
};

/// "off" / "warn" / "error" (accepts a few aliases, case-insensitive).
[[nodiscard]] std::optional<LintLevel> parse_lint_level(std::string_view text);
[[nodiscard]] std::string_view lint_level_name(LintLevel level) noexcept;
[[nodiscard]] std::string_view severity_name(Severity severity) noexcept;

/// Process-wide default, read once from ARCADE_LINT (off|warn|error);
/// defaults to Warn.  Unknown values throw ModelError on first use.
[[nodiscard]] LintLevel default_lint_level();

/// One finding.  `offset` is the byte offset into the source text the
/// expression was parsed from (expr::Expr::npos for programmatically built
/// models, e.g. the Arcade translation).
struct Diagnostic {
    std::string id;        ///< stable check ID, e.g. "AR004"
    Severity severity = Severity::Warning;
    std::string message;   ///< what is wrong, with witness when confirmed
    std::string where;     ///< model location, e.g. "module 'pump' command 2"
    std::size_t offset = expr::Expr::npos;

    /// "error[AR004] module 'pump' command 2: ..." (+ source offset if known).
    [[nodiscard]] std::string to_string() const;
};

struct LintOptions {
    /// Largest variable-domain product the confirmation pass enumerates;
    /// larger products downgrade would-be errors to warnings.
    std::size_t enumeration_limit = 200000;
    /// Formulas the source carried but nothing referenced (name + byte
    /// offset); supplied by the PRISM parser, reported as AR010.
    std::vector<std::pair<std::string, std::size_t>> unused_formulas;
};

struct LintReport {
    std::vector<Diagnostic> diagnostics;
    int errors = 0;
    int warnings = 0;
    int notes = 0;

    [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
    /// One line per diagnostic, in check order.
    [[nodiscard]] std::string to_string() const;
};

/// Runs every check against `system`.
[[nodiscard]] LintReport lint(const modules::ModuleSystem& system,
                              const LintOptions& options = {});

}  // namespace arcade::analysis

#endif  // ARCADE_ANALYSIS_LINT_HPP
