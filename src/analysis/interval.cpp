#include "analysis/interval.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "support/strings.hpp"

namespace arcade::analysis {

namespace {

using expr::BinaryOp;
using expr::Expr;
using expr::UnaryOp;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Corner product with the 0 * inf corner resolved to 0: concrete values are
/// always finite, so the supremum of x*y over x = 0 is 0 regardless of how
/// unbounded the other interval is.
double corner_mul(double x, double y) {
    const double r = x * y;
    return std::isnan(r) ? 0.0 : r;
}

double corner_pow(double x, double y) {
    const double r = std::pow(x, y);
    return std::isnan(r) ? 0.0 : r;
}

/// Only-an-error abstract value (e.g. division by a provable zero).
AbstractValue failure() {
    AbstractValue v;
    v.may_fail = true;
    return v;
}

/// Arithmetic on the numeric parts.  Callers guarantee both operands have a
/// numeric part; bool parts contribute may_fail in the dispatcher.
AbstractValue numeric_binary(BinaryOp op, const AbstractValue& a, const AbstractValue& b) {
    const bool integral = a.integral && b.integral;
    switch (op) {
        case BinaryOp::Add:
            return AbstractValue::numeric(a.lo + b.lo, a.hi + b.hi, integral);
        case BinaryOp::Sub:
            return AbstractValue::numeric(a.lo - b.hi, a.hi - b.lo, integral);
        case BinaryOp::Mul: {
            const double c[4] = {corner_mul(a.lo, b.lo), corner_mul(a.lo, b.hi),
                                 corner_mul(a.hi, b.lo), corner_mul(a.hi, b.hi)};
            return AbstractValue::numeric(*std::min_element(c, c + 4),
                                          *std::max_element(c, c + 4), integral);
        }
        case BinaryOp::Min:
            return AbstractValue::numeric(std::min(a.lo, b.lo), std::min(a.hi, b.hi),
                                          integral);
        case BinaryOp::Max:
            return AbstractValue::numeric(std::max(a.lo, b.lo), std::max(a.hi, b.hi),
                                          integral);
        case BinaryOp::Div: {
            if (b.lo == 0.0 && b.hi == 0.0) return failure();  // always divides by zero
            if (b.lo <= 0.0 && b.hi >= 0.0) {
                // The denominator interval contains zero: any quotient is
                // possible and evaluation can throw.
                AbstractValue r = AbstractValue::numeric(-kInf, kInf, false);
                r.may_fail = true;
                return r;
            }
            const double c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
            return AbstractValue::numeric(*std::min_element(c, c + 4),
                                          *std::max_element(c, c + 4), false);
        }
        case BinaryOp::Pow: {
            if (a.lo < 0.0) return AbstractValue::numeric(-kInf, kInf, false);
            const double c[4] = {corner_pow(a.lo, b.lo), corner_pow(a.lo, b.hi),
                                 corner_pow(a.hi, b.lo), corner_pow(a.hi, b.hi)};
            return AbstractValue::numeric(*std::min_element(c, c + 4),
                                          *std::max_element(c, c + 4), false);
        }
        default: break;
    }
    return AbstractValue::top();
}

/// Ordering comparisons on the numeric parts.
AbstractValue numeric_compare(BinaryOp op, const AbstractValue& a, const AbstractValue& b) {
    switch (op) {
        case BinaryOp::Lt: return AbstractValue::boolean(a.lo < b.hi, a.hi >= b.lo);
        case BinaryOp::Le: return AbstractValue::boolean(a.lo <= b.hi, a.hi > b.lo);
        case BinaryOp::Gt: return AbstractValue::boolean(a.hi > b.lo, a.lo <= b.hi);
        case BinaryOp::Ge: return AbstractValue::boolean(a.hi >= b.lo, a.lo < b.hi);
        default: break;
    }
    return AbstractValue::boolean(true, true);
}

/// Eq/Ne over the full possibility sets.  Value::operator== is total (a bool
/// never equals a number — it compares false, it does not throw).
AbstractValue equality(BinaryOp op, const AbstractValue& a, const AbstractValue& b) {
    const bool numeric_overlap =
        a.has_numeric && b.has_numeric && a.lo <= b.hi && b.lo <= a.hi;
    const bool numeric_pinned =
        a.has_numeric && b.has_numeric && a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
    const bool eq_possible = numeric_overlap || (a.can_true && b.can_true) ||
                             (a.can_false && b.can_false);
    const bool ne_possible = (a.has_numeric && b.has_numeric && !numeric_pinned) ||
                             (a.can_true && b.can_false) || (a.can_false && b.can_true) ||
                             (a.has_numeric && b.has_bool()) ||
                             (a.has_bool() && b.has_numeric);
    if (op == BinaryOp::Eq) return AbstractValue::boolean(eq_possible, ne_possible);
    return AbstractValue::boolean(ne_possible, eq_possible);
}

BinaryOp negate_comparison(BinaryOp op) {
    switch (op) {
        case BinaryOp::Lt: return BinaryOp::Ge;
        case BinaryOp::Le: return BinaryOp::Gt;
        case BinaryOp::Gt: return BinaryOp::Le;
        case BinaryOp::Ge: return BinaryOp::Lt;
        case BinaryOp::Eq: return BinaryOp::Ne;
        case BinaryOp::Ne: return BinaryOp::Eq;
        default: return op;
    }
}

bool is_comparison(BinaryOp op) {
    switch (op) {
        case BinaryOp::Lt:
        case BinaryOp::Le:
        case BinaryOp::Gt:
        case BinaryOp::Ge:
        case BinaryOp::Eq:
        case BinaryOp::Ne: return true;
        default: return false;
    }
}

/// Intersects the numeric part of `v` with the comparison `v <op> c`.
void refine_numeric(AbstractValue& v, BinaryOp op, double c) {
    if (!v.has_numeric) return;
    switch (op) {
        case BinaryOp::Lt:
            v.hi = std::min(v.hi, v.integral ? std::ceil(c) - 1.0 : c);
            break;
        case BinaryOp::Le: v.hi = std::min(v.hi, v.integral ? std::floor(c) : c); break;
        case BinaryOp::Gt:
            v.lo = std::max(v.lo, v.integral ? std::floor(c) + 1.0 : c);
            break;
        case BinaryOp::Ge: v.lo = std::max(v.lo, v.integral ? std::ceil(c) : c); break;
        case BinaryOp::Eq:
            v.lo = std::max(v.lo, c);
            v.hi = std::min(v.hi, c);
            if (v.integral && c != std::floor(c)) v.hi = v.lo - 1.0;  // empty
            break;
        case BinaryOp::Ne:
            if (v.integral && v.lo == c) v.lo += 1.0;
            if (v.integral && v.hi == c) v.hi -= 1.0;
            break;
        default: return;
    }
    if (v.hi < v.lo) v.has_numeric = false;
}

/// `id <op> literal` (the shape the translation's guards and ite conditions
/// take) — refines the identifier's entry in `env`.
void refine_identifier(AbstractEnv& env, const std::string& name, BinaryOp op,
                       const expr::Value& c) {
    const auto it = env.find(name);
    if (it == env.end()) return;
    AbstractValue& v = it->second;
    if (c.is_bool()) {
        // b = true / b != false and friends.
        const bool want = (op == BinaryOp::Eq) == c.as_bool();
        if (op != BinaryOp::Eq && op != BinaryOp::Ne) return;
        if (want) {
            v.can_false = false;
        } else {
            v.can_true = false;
        }
        return;
    }
    refine_numeric(v, op, c.as_double());
}

/// The literal (or singleton-constant) value of `e` under `env`, if any.
const expr::Value* comparison_constant(const Expr& e, std::optional<expr::Value>& storage,
                                       const AbstractEnv& env) {
    if (e.empty()) return nullptr;
    if (const auto* lit = std::get_if<expr::Literal>(&e.node())) return &lit->value;
    if (const auto* id = std::get_if<expr::Identifier>(&e.node())) {
        const auto it = env.find(id->name);
        if (it != env.end() && it->second.is_singleton()) {
            if (it->second.integral) {
                storage = expr::Value(static_cast<long long>(it->second.lo));
            } else {
                storage = expr::Value(it->second.lo);
            }
            return &*storage;
        }
    }
    return nullptr;
}

BinaryOp flip_comparison(BinaryOp op) {  // a <op> b  ==  b <flip(op)> a
    switch (op) {
        case BinaryOp::Lt: return BinaryOp::Gt;
        case BinaryOp::Le: return BinaryOp::Ge;
        case BinaryOp::Gt: return BinaryOp::Lt;
        case BinaryOp::Ge: return BinaryOp::Le;
        default: return op;  // Eq/Ne are symmetric
    }
}

}  // namespace

AbstractValue AbstractValue::numeric(double lo, double hi, bool integral) {
    AbstractValue v;
    v.has_numeric = true;
    v.lo = lo;
    v.hi = hi;
    v.integral = integral;
    return v;
}

AbstractValue AbstractValue::boolean(bool can_true, bool can_false) {
    AbstractValue v;
    v.can_true = can_true;
    v.can_false = can_false;
    return v;
}

AbstractValue AbstractValue::constant(const expr::Value& v) {
    if (v.is_bool()) return boolean(v.as_bool(), !v.as_bool());
    if (v.is_int()) {
        const double d = static_cast<double>(v.as_int());
        return numeric(d, d, true);
    }
    return numeric(v.as_double(), v.as_double(), false);
}

AbstractValue AbstractValue::top() {
    AbstractValue v = numeric(-kInf, kInf, false);
    v.can_true = v.can_false = true;
    v.may_fail = true;
    return v;
}

AbstractValue AbstractValue::join(const AbstractValue& other) const {
    AbstractValue v;
    v.has_numeric = has_numeric || other.has_numeric;
    if (has_numeric && other.has_numeric) {
        v.lo = std::min(lo, other.lo);
        v.hi = std::max(hi, other.hi);
        v.integral = integral && other.integral;
    } else if (has_numeric) {
        v.lo = lo;
        v.hi = hi;
        v.integral = integral;
    } else if (other.has_numeric) {
        v.lo = other.lo;
        v.hi = other.hi;
        v.integral = other.integral;
    }
    v.can_true = can_true || other.can_true;
    v.can_false = can_false || other.can_false;
    v.may_fail = may_fail || other.may_fail;
    return v;
}

std::string AbstractValue::to_string() const {
    const auto fmt = [this](double x) -> std::string {
        if (std::isinf(x)) return x > 0 ? "+inf" : "-inf";
        if (integral) return std::to_string(static_cast<long long>(x));
        return format_double(x);
    };
    std::string out;
    if (has_numeric) out += "[" + fmt(lo) + ", " + fmt(hi) + "]";
    if (has_bool()) {
        if (!out.empty()) out += " or ";
        out += "{";
        if (can_true) out += "true";
        if (can_true && can_false) out += ", ";
        if (can_false) out += "false";
        out += "}";
    }
    if (out.empty()) return "<error>";
    if (may_fail) out += " (may fail)";
    return out;
}

AbstractValue abstract_eval(const expr::Expr& e, const AbstractEnv& env) {
    if (e.empty()) return AbstractValue::top();
    const auto& n = e.node();
    if (const auto* lit = std::get_if<expr::Literal>(&n)) {
        return AbstractValue::constant(lit->value);
    }
    if (const auto* id = std::get_if<expr::Identifier>(&n)) {
        const auto it = env.find(id->name);
        return it == env.end() ? AbstractValue::top() : it->second;
    }
    if (const auto* u = std::get_if<expr::Unary>(&n)) {
        const AbstractValue a = abstract_eval(u->operand, env);
        if (a.always_fails()) return failure();
        AbstractValue r;
        switch (u->op) {
            case UnaryOp::Neg:
                if (a.has_numeric) r = AbstractValue::numeric(-a.hi, -a.lo, a.integral);
                r.may_fail = a.has_bool();  // -true throws
                break;
            case UnaryOp::Not:
                r = AbstractValue::boolean(a.can_false, a.can_true);
                r.may_fail = a.has_numeric;  // !3 throws
                break;
            case UnaryOp::Floor:
                if (a.has_numeric) {
                    r = AbstractValue::numeric(std::floor(a.lo), std::floor(a.hi), true);
                }
                r.may_fail = a.has_bool();
                break;
            case UnaryOp::Ceil:
                if (a.has_numeric) {
                    r = AbstractValue::numeric(std::ceil(a.lo), std::ceil(a.hi), true);
                }
                r.may_fail = a.has_bool();
                break;
        }
        r.may_fail = r.may_fail || a.may_fail;
        return r;
    }
    if (const auto* b = std::get_if<expr::Binary>(&n)) {
        const AbstractValue a = abstract_eval(b->lhs, env);
        if (a.always_fails()) return failure();
        // Short-circuit operators: the rhs of a provably-decided lhs never
        // runs, so its failures (and values) must not leak into the result.
        if (b->op == BinaryOp::And || b->op == BinaryOp::Or) {
            const bool is_and = b->op == BinaryOp::And;
            AbstractValue r;
            r.may_fail = a.may_fail || a.has_numeric;  // non-bool lhs throws
            const bool rhs_reachable = is_and ? a.can_true : a.can_false;
            if (rhs_reachable) {
                const AbstractValue rv = abstract_eval(b->rhs, env);
                r.may_fail = r.may_fail || rv.may_fail || rv.has_numeric;
                if (is_and) {
                    r.can_true = a.can_true && rv.can_true;
                    r.can_false = a.can_false || (a.can_true && rv.can_false);
                } else {
                    r.can_true = a.can_true || (a.can_false && rv.can_true);
                    r.can_false = a.can_false && rv.can_false;
                }
            } else {
                // lhs decides: false & _ == false, true | _ == true.
                r.can_true = !is_and && a.can_true;
                r.can_false = is_and && a.can_false;
            }
            return r;
        }
        const AbstractValue c = abstract_eval(b->rhs, env);
        if (c.always_fails()) {
            AbstractValue r;
            r.may_fail = true;
            return r;
        }
        AbstractValue r;
        switch (b->op) {
            case BinaryOp::Add:
            case BinaryOp::Sub:
            case BinaryOp::Mul:
            case BinaryOp::Div:
            case BinaryOp::Min:
            case BinaryOp::Max:
            case BinaryOp::Pow:
                if (a.has_numeric && c.has_numeric) {
                    r = numeric_binary(b->op, a, c);
                } else {
                    r.may_fail = true;  // a bool operand always throws
                }
                r.may_fail = r.may_fail || a.has_bool() || c.has_bool();
                break;
            case BinaryOp::Lt:
            case BinaryOp::Le:
            case BinaryOp::Gt:
            case BinaryOp::Ge:
                if (a.has_numeric && c.has_numeric) {
                    r = numeric_compare(b->op, a, c);
                } else {
                    r.may_fail = true;
                }
                r.may_fail = r.may_fail || a.has_bool() || c.has_bool();
                break;
            case BinaryOp::Eq:
            case BinaryOp::Ne: r = equality(b->op, a, c); break;
            case BinaryOp::Implies:
                r = AbstractValue::boolean(a.can_false || c.can_true,
                                           a.can_true && c.can_false);
                r.may_fail = a.has_numeric || c.has_numeric;
                break;
            case BinaryOp::Iff:
                r = AbstractValue::boolean(
                    (a.can_true && c.can_true) || (a.can_false && c.can_false),
                    (a.can_true && c.can_false) || (a.can_false && c.can_true));
                r.may_fail = a.has_numeric || c.has_numeric;
                break;
            default: r = AbstractValue::top(); break;
        }
        r.may_fail = r.may_fail || a.may_fail || c.may_fail;
        return r;
    }
    const auto& ite = std::get<expr::Ite>(n);
    const AbstractValue c = abstract_eval(ite.cond, env);
    if (c.always_fails()) return failure();
    AbstractValue r;
    r.may_fail = c.may_fail || c.has_numeric;  // non-bool condition throws
    if (c.can_true) {
        r = r.join(abstract_eval(ite.then_branch, refine(env, ite.cond, true)));
    }
    if (c.can_false) {
        r = r.join(abstract_eval(ite.else_branch, refine(env, ite.cond, false)));
    }
    return r;
}

AbstractEnv refine(AbstractEnv env, const expr::Expr& cond, bool assume_true) {
    if (cond.empty()) return env;
    const auto& n = cond.node();
    if (const auto* id = std::get_if<expr::Identifier>(&n)) {
        // A bare boolean variable as the condition.
        const auto it = env.find(id->name);
        if (it != env.end()) {
            if (assume_true) {
                it->second.can_false = false;
            } else {
                it->second.can_true = false;
            }
        }
        return env;
    }
    if (const auto* u = std::get_if<expr::Unary>(&n)) {
        if (u->op == UnaryOp::Not) return refine(std::move(env), u->operand, !assume_true);
        return env;
    }
    const auto* b = std::get_if<expr::Binary>(&n);
    if (b == nullptr) return env;
    if (b->op == BinaryOp::And && assume_true) {
        return refine(refine(std::move(env), b->lhs, true), b->rhs, true);
    }
    if (b->op == BinaryOp::Or && !assume_true) {
        return refine(refine(std::move(env), b->lhs, false), b->rhs, false);
    }
    if (!is_comparison(b->op)) return env;
    const BinaryOp op = assume_true ? b->op : negate_comparison(b->op);
    std::optional<expr::Value> storage_l;
    std::optional<expr::Value> storage_r;
    const expr::Value* cl = comparison_constant(b->lhs, storage_l, env);
    const expr::Value* cr = comparison_constant(b->rhs, storage_r, env);
    const auto* idl = cl == nullptr ? std::get_if<expr::Identifier>(&b->lhs.node()) : nullptr;
    const auto* idr = cr == nullptr ? std::get_if<expr::Identifier>(&b->rhs.node()) : nullptr;
    if (idl != nullptr && cr != nullptr) {
        refine_identifier(env, idl->name, op, *cr);
    } else if (idr != nullptr && cl != nullptr) {
        refine_identifier(env, idr->name, flip_comparison(op), *cl);
    }
    return env;
}

}  // namespace arcade::analysis
